//! The write-ahead log: append-only segments of length-prefixed,
//! checksummed record frames.
//!
//! ## Frame layout
//!
//! ```text
//! [u32 payload_len][u64 seq][payload bytes][u64 fnv1a64(seq ‖ payload)]
//! ```
//!
//! all little-endian. A frame is valid iff it is complete *and* its
//! checksum matches; anything else at the end of the final segment is a
//! torn tail — truncated on recovery, never replayed. The same damage in
//! the *interior* of the log (an earlier segment, or followed by further
//! valid frames… which cannot happen under append-only writing) is real
//! corruption and refuses to open.
//!
//! ## Segments
//!
//! Each segment file `wal-<first_seq:016x>.log` opens with an 8-byte
//! magic. Appends rotate to a fresh segment once the active one exceeds
//! the configured limit, so snapshot-covered prefixes can be pruned
//! file-at-a-time ([`prune_through`](Wal::prune_through)).

use crate::record::WalRecord;
use crate::{checksum, StorageError};
use chainsplit_governor::Governor;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Segment file magic: "CSWAL" + format version 1.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CSWAL\x00\x00\x01";

/// Frame overhead: length prefix + sequence number + checksum.
const FRAME_OVERHEAD: usize = 4 + 8 + 8;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 256 * 1024;

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.log"))
}

/// Lists the segment files in `dir`, in sequence order.
pub fn segment_files(dir: &Path) -> Result<Vec<PathBuf>, StorageError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, e))?;
    for entry in entries {
        let path = entry.map_err(|e| StorageError::io(dir, e))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("wal-") && name.ends_with(".log") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Everything a scan of the on-disk log recovered.
#[derive(Debug)]
pub struct ScanResult {
    /// Valid records in sequence order, duplicates dropped.
    pub records: Vec<WalRecord>,
    /// Bytes cut from the final segment as a torn tail (0 when clean).
    pub truncated_bytes: u64,
    /// Total bytes of valid log retained across all segments.
    pub live_bytes: u64,
    /// The highest valid sequence number seen (0 when the log is empty).
    pub last_seq: u64,
    /// Number of segment files.
    pub segments: usize,
}

/// Scans every segment in `dir`, validating frames and truncating a torn
/// tail in the final segment. Interior corruption is an error.
pub fn scan(dir: &Path) -> Result<ScanResult, StorageError> {
    let mut sp = chainsplit_trace::Span::enter_cat("wal-scan", "wal");
    let files = segment_files(dir)?;
    let mut result = ScanResult {
        records: Vec::new(),
        truncated_bytes: 0,
        live_bytes: 0,
        last_seq: 0,
        segments: files.len(),
    };
    for (i, path) in files.iter().enumerate() {
        let is_last = i + 1 == files.len();
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StorageError::io(path, e))?;
        let path_str = path.display().to_string();
        if bytes.len() < SEGMENT_MAGIC.len() || bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            // A segment so torn even the magic is incomplete can only be
            // the freshly rotated final segment; anywhere else it is
            // corruption.
            if is_last && bytes.len() < SEGMENT_MAGIC.len() {
                result.truncated_bytes += bytes.len() as u64;
                std::fs::remove_file(path).map_err(|e| StorageError::io(path, e))?;
                result.segments -= 1;
                break;
            }
            return Err(StorageError::Corrupt {
                path: path_str,
                detail: "bad segment magic".into(),
            });
        }
        let mut pos = SEGMENT_MAGIC.len();
        loop {
            if pos == bytes.len() {
                break;
            }
            let frame = parse_frame(&bytes[pos..]);
            match frame {
                Ok((rec_seq, payload, frame_len)) => {
                    // Skip duplicates (a replayed buffer / the duplicate-
                    // record failpoint): a frame whose seq does not
                    // advance is applied at most once.
                    if rec_seq > result.last_seq {
                        let rec = WalRecord::decode_payload(rec_seq, payload, &path_str)?;
                        result.last_seq = rec_seq;
                        result.records.push(rec);
                    }
                    pos += frame_len;
                }
                Err(detail) => {
                    if is_last {
                        // Torn tail: cut it off and stop. Never replayed.
                        result.truncated_bytes += (bytes.len() - pos) as u64;
                        let f = OpenOptions::new()
                            .write(true)
                            .open(path)
                            .map_err(|e| StorageError::io(path, e))?;
                        f.set_len(pos as u64)
                            .map_err(|e| StorageError::io(path, e))?;
                        f.sync_all().map_err(|e| StorageError::io(path, e))?;
                        bytes.truncate(pos);
                        break;
                    }
                    return Err(StorageError::Corrupt {
                        path: path_str,
                        detail,
                    });
                }
            }
        }
        result.live_bytes += bytes.len() as u64;
    }
    sp.set_attr("records", result.records.len());
    sp.set_attr("truncated_bytes", result.truncated_bytes);
    Ok(result)
}

/// Parses one frame from `buf`. Returns `(seq, payload, frame_len)` or a
/// description of why the bytes are not a valid frame.
fn parse_frame(buf: &[u8]) -> Result<(u64, &[u8], usize), String> {
    if buf.len() < FRAME_OVERHEAD {
        return Err(format!("incomplete frame header ({} bytes)", buf.len()));
    }
    let payload_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let frame_len = FRAME_OVERHEAD + payload_len;
    if buf.len() < frame_len {
        return Err(format!(
            "incomplete frame ({} of {frame_len} bytes)",
            buf.len()
        ));
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload = &buf[12..12 + payload_len];
    let stored = u64::from_le_bytes(buf[frame_len - 8..frame_len].try_into().unwrap());
    let mut sum_input = Vec::with_capacity(8 + payload_len);
    sum_input.extend_from_slice(&seq.to_le_bytes());
    sum_input.extend_from_slice(payload);
    if checksum(&sum_input) != stored {
        return Err(format!("checksum mismatch at seq {seq}"));
    }
    Ok((seq, payload, frame_len))
}

/// Encodes one frame for `rec`.
fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.encode_payload();
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&rec.seq.to_le_bytes());
    frame.extend_from_slice(&payload);
    let mut sum_input = Vec::with_capacity(8 + payload.len());
    sum_input.extend_from_slice(&rec.seq.to_le_bytes());
    sum_input.extend_from_slice(&payload);
    frame.extend_from_slice(&checksum(&sum_input).to_le_bytes());
    frame
}

/// The append end of the log.
pub struct Wal {
    dir: PathBuf,
    active: File,
    active_path: PathBuf,
    active_bytes: u64,
    segment_limit: u64,
    /// The sequence number the next appended record receives.
    pub next_seq: u64,
    /// Valid log bytes across all segments (scan result + appends).
    pub live_bytes: u64,
    /// Number of segment files.
    pub segments: usize,
}

impl Wal {
    /// Opens the log for appending after a [`scan`]: continues the last
    /// segment, or starts `wal-<next_seq>.log` when the directory has
    /// none.
    pub fn open(dir: &Path, scanned: &ScanResult, segment_limit: u64) -> Result<Wal, StorageError> {
        let files = segment_files(dir)?;
        let next_seq = scanned.last_seq + 1;
        let (active_path, active, active_bytes, segments) = match files.last() {
            Some(path) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| StorageError::io(path, e))?;
                let bytes = file
                    .metadata()
                    .map_err(|e| StorageError::io(path, e))?
                    .len();
                (path.clone(), file, bytes, files.len())
            }
            None => {
                let path = segment_path(dir, next_seq);
                let (file, bytes) = new_segment(&path)?;
                (path, file, bytes, 1)
            }
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            active,
            active_path,
            active_bytes,
            segment_limit,
            next_seq,
            live_bytes: scanned.live_bytes.max(SEGMENT_MAGIC.len() as u64),
            segments,
        })
    }

    /// Appends `rec` and fsyncs. Charges the frame bytes to `gov`'s byte
    /// budget and the fsync to its deadline; a trip refuses the append
    /// before anything is written. Returns the frame size in bytes.
    ///
    /// In `fault-inject` builds, the frame write and the fsync are
    /// persistence points: an armed filesystem failpoint leaves the
    /// described damage (torn/short/duplicated frame, flipped checksum)
    /// and reports a simulated crash.
    pub fn append(&mut self, rec: &WalRecord, gov: &Governor) -> Result<u64, StorageError> {
        debug_assert_eq!(rec.seq, self.next_seq, "records must append in order");
        let mut sp = chainsplit_trace::Span::enter_cat("wal-append", "wal");
        sp.set_attr("seq", rec.seq);
        let frame = encode_frame(rec);
        gov.add_bytes(frame.len() as u64);
        gov.check("wal-append").map_err(StorageError::Budget)?;
        if self.active_bytes + frame.len() as u64 > self.segment_limit
            && self.active_bytes > SEGMENT_MAGIC.len() as u64
        {
            self.rotate()?;
        }
        let written = self.write_frame(&frame)?;
        self.fsync()?;
        self.active_bytes += written;
        self.live_bytes += written;
        self.next_seq = rec.seq + 1;
        sp.set_attr("bytes", written);
        Ok(written)
    }

    /// Writes the encoded frame, honoring an armed write failpoint.
    /// Returns the bytes that actually reached the file.
    fn write_frame(&mut self, frame: &[u8]) -> Result<u64, StorageError> {
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = chainsplit_governor::faults::poll_fs() {
            use chainsplit_governor::faults::FsFault;
            let crash = |fault: &'static str| StorageError::Crashed {
                point: "wal-append",
                fault,
            };
            let write = |f: &mut File, bytes: &[u8]| {
                f.write_all(bytes)
                    .and_then(|()| f.sync_data())
                    .map_err(|e| StorageError::io(&self.active_path, e))
            };
            return match fault {
                FsFault::TornWrite => {
                    write(&mut self.active, &frame[..frame.len() / 2])?;
                    Err(crash("torn-write"))
                }
                FsFault::ShortWrite => {
                    write(&mut self.active, &frame[..frame.len() - 1])?;
                    Err(crash("short-write"))
                }
                FsFault::CorruptChecksum => {
                    let mut bad = frame.to_vec();
                    *bad.last_mut().expect("frames are non-empty") ^= 0xFF;
                    write(&mut self.active, &bad)?;
                    Err(crash("corrupt-checksum"))
                }
                FsFault::DuplicateRecord => {
                    let mut twice = frame.to_vec();
                    twice.extend_from_slice(frame);
                    write(&mut self.active, &twice)?;
                    Err(crash("duplicate-record"))
                }
                FsFault::CrashBeforeRename => Err(crash("crash-before-write")),
                FsFault::CrashAfterRename => {
                    write(&mut self.active, frame)?;
                    Err(crash("crash-after-write"))
                }
            };
        }
        self.active
            .write_all(frame)
            .map_err(|e| StorageError::io(&self.active_path, e))?;
        Ok(frame.len() as u64)
    }

    /// Fsyncs the active segment, honoring an armed fsync failpoint.
    fn fsync(&mut self) -> Result<(), StorageError> {
        let _sp = chainsplit_trace::Span::enter_cat("wal-fsync", "wal");
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = chainsplit_governor::faults::poll_fs() {
            use chainsplit_governor::faults::FsFault;
            // The frame bytes are already written; the only question is
            // whether the sync happened before the "kill".
            if fault == FsFault::CrashAfterRename {
                self.active
                    .sync_data()
                    .map_err(|e| StorageError::io(&self.active_path, e))?;
            }
            return Err(StorageError::Crashed {
                point: "wal-fsync",
                fault: "crash-at-fsync",
            });
        }
        self.active
            .sync_data()
            .map_err(|e| StorageError::io(&self.active_path, e))
    }

    /// Starts a fresh segment named after the next sequence number.
    fn rotate(&mut self) -> Result<(), StorageError> {
        let mut sp = chainsplit_trace::Span::enter_cat("wal-rotate", "wal");
        sp.set_attr("seq", self.next_seq);
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = chainsplit_governor::faults::poll_fs() {
            use chainsplit_governor::faults::FsFault;
            if fault != FsFault::CrashAfterRename {
                // Killed before the new segment exists: the old segment
                // stays the (complete) tail.
                return Err(StorageError::Crashed {
                    point: "wal-rotate",
                    fault: "crash-before-rotate",
                });
            }
            let path = segment_path(&self.dir, self.next_seq);
            let (file, bytes) = new_segment(&path)?;
            self.active = file;
            self.active_path = path;
            self.active_bytes = bytes;
            self.live_bytes += bytes;
            self.segments += 1;
            return Err(StorageError::Crashed {
                point: "wal-rotate",
                fault: "crash-after-rotate",
            });
        }
        let path = segment_path(&self.dir, self.next_seq);
        let (file, bytes) = new_segment(&path)?;
        self.active = file;
        self.active_path = path;
        self.active_bytes = bytes;
        self.live_bytes += bytes;
        self.segments += 1;
        Ok(())
    }

    /// Deletes every segment whose records are all covered by a snapshot
    /// at `seq` — i.e. segments entirely named-and-followed below the
    /// next segment that could hold `seq + 1`. The active segment always
    /// survives.
    pub fn prune_through(&mut self, seq: u64) -> Result<usize, StorageError> {
        let files = segment_files(&self.dir)?;
        let mut pruned = 0;
        for window in files.windows(2) {
            let (path, next) = (&window[0], &window[1]);
            if *path == self.active_path {
                break;
            }
            // Segment names carry their first seq; a segment is fully
            // covered when the *next* segment starts at or below seq + 1.
            let next_first = next
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("wal-"))
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(u64::MAX);
            if next_first <= seq + 1 {
                let len = std::fs::metadata(path)
                    .map_err(|e| StorageError::io(path, e))?
                    .len();
                std::fs::remove_file(path).map_err(|e| StorageError::io(path, e))?;
                self.live_bytes = self.live_bytes.saturating_sub(len);
                self.segments -= 1;
                pruned += 1;
            }
        }
        Ok(pruned)
    }
}

/// Creates a fresh segment file with its magic header, synced.
fn new_segment(path: &Path) -> Result<(File, u64), StorageError> {
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(path)
        .map_err(|e| StorageError::io(path, e))?;
    file.write_all(&SEGMENT_MAGIC)
        .and_then(|()| file.sync_data())
        .map_err(|e| StorageError::io(path, e))?;
    Ok((file, SEGMENT_MAGIC.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Op;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chainsplit-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            op: Op::AddFact(format!("e({seq}, {})", seq + 1)),
            program_epoch: 0,
            edb_epochs: vec![("e/2".into(), seq)],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let gov = Governor::new();
        let scanned = scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, &scanned, DEFAULT_SEGMENT_BYTES).unwrap();
        for seq in 1..=20 {
            wal.append(&rec(seq), &gov).unwrap();
        }
        let back = scan(&dir).unwrap();
        assert_eq!(back.records.len(), 20);
        assert_eq!(back.last_seq, 20);
        assert_eq!(back.truncated_bytes, 0);
        assert_eq!(back.records[7], rec(8));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let dir = tmp_dir("torn");
        let gov = Governor::new();
        let scanned = scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, &scanned, DEFAULT_SEGMENT_BYTES).unwrap();
        for seq in 1..=5 {
            wal.append(&rec(seq), &gov).unwrap();
        }
        drop(wal);
        // Tear the last frame by hand: chop bytes off the segment end.
        let seg = segment_files(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let back = scan(&dir).unwrap();
        assert_eq!(back.records.len(), 4, "the torn record must not replay");
        assert_eq!(back.last_seq, 4);
        assert!(back.truncated_bytes > 0);
        // The tail is gone from disk too: a re-scan is clean, and a
        // fresh append continues from the truncated point.
        let again = scan(&dir).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        let mut wal = Wal::open(&dir, &again, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(wal.next_seq, 5);
        wal.append(&rec(5), &gov).unwrap();
        assert_eq!(scan(&dir).unwrap().records.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_refuses_to_open() {
        let dir = tmp_dir("interior");
        let gov = Governor::new();
        let scanned = scan(&dir).unwrap();
        // Tiny segments: every record rotates, so damage in segment one
        // is interior, not a tail.
        let mut wal = Wal::open(&dir, &scanned, 1).unwrap();
        for seq in 1..=3 {
            wal.append(&rec(seq), &gov).unwrap();
        }
        drop(wal);
        let segs = segment_files(&dir).unwrap();
        assert!(segs.len() >= 2, "tiny limit must rotate");
        let first = &segs[0];
        let mut bytes = std::fs::read(first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();
        match scan(&dir) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("interior corruption must refuse: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_prunes_behind_a_snapshot() {
        let dir = tmp_dir("prune");
        let gov = Governor::new();
        let scanned = scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, &scanned, 1).unwrap();
        for seq in 1..=6 {
            wal.append(&rec(seq), &gov).unwrap();
        }
        let before = segment_files(&dir).unwrap().len();
        assert!(before >= 3);
        let pruned = wal.prune_through(4).unwrap();
        assert!(pruned > 0);
        // Everything after the snapshot point must still replay.
        let back = scan(&dir).unwrap();
        assert!(back.records.iter().any(|r| r.seq == 5));
        assert!(back.records.iter().any(|r| r.seq == 6));
        assert!(back.records.iter().all(|r| r.seq > pruned as u64));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_budget_refuses_an_append_cleanly() {
        let dir = tmp_dir("budget");
        let gov = Governor::new();
        gov.set_budget(chainsplit_governor::Budget {
            max_bytes_est: Some(16),
            ..Default::default()
        });
        gov.begin_query();
        let scanned = scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, &scanned, DEFAULT_SEGMENT_BYTES).unwrap();
        match wal.append(&rec(1), &gov) {
            Err(StorageError::Budget(trip)) => {
                assert_eq!(trip.resource, chainsplit_governor::Resource::Bytes);
            }
            other => panic!("expected a budget refusal, got {other:?}"),
        }
        // Nothing was written: the log is still empty.
        assert_eq!(scan(&dir).unwrap().records.len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
