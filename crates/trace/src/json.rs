//! A hand-rolled JSON value, writer and parser.
//!
//! The workspace builds offline against `vendor/` stubs, so there is no
//! serde; this module is the single JSON implementation shared by the
//! Chrome trace exporter, the `BENCH_*.json` benchmark records and the
//! `bench_compare` regression gate. It covers exactly the JSON the
//! repository produces and consumes: objects, arrays, strings with the
//! standard escapes, finite numbers, booleans and null.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite floats serialize as `null`, which is
    /// what browsers' `JSON.stringify` does.
    Num(f64),
    /// A string (stored unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key list — insertion order is preserved so
    /// written files diff cleanly.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer-valued number node.
    pub fn int(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// A string node.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup on an object (`None` for other node kinds).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in document order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The array elements (empty for other node kinds).
    pub fn as_array(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a usize (floors; `None` when negative or not a
    /// number) — counters and row counts.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 => Some(*v as usize),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation — the format of the committed
    /// `BENCH_*.json` files, chosen so runs diff line-by-line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline(out, indent, level);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be one value (trailing
    /// whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        write!(out, "{}", v as i64).unwrap();
    } else {
        write!(out, "{v}").unwrap();
    }
}

fn write_str(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the JSON
                            // this repo writes; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::int(1)),
            (
                "rows".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::str("a \"quoted\"\nline")),
                    ("wall_ms".into(), Json::Num(1.25)),
                    ("dnf".into(), Json::Bool(false)),
                    ("note".into(), Json::Null),
                ])]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::int(42).to_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\t\" , true , null ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("aA\t"));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_are_kind_checked() {
        let v = Json::parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.keys(), ["n"]);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
