//! # chainsplit-trace
//!
//! Zero-dependency span tracing for the chain-split deductive database.
//!
//! The evaluators are instrumented with [`Span`] RAII guards (usually via
//! the [`span!`] macro). When tracing is **off** — the default — a guard is
//! a single relaxed atomic load and an inert struct: no clock reads, no
//! locking, no allocation, so instrumented hot paths cost nothing
//! measurable. When tracing is **on**, every dropped guard records a
//! [`SpanRecord`] (name, category, monotonic start, duration, thread,
//! parent span, attributes) into a global collector, and the collected run
//! can be exported as a Chrome trace-event JSON array loadable by
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! ```
//! chainsplit_trace::clear();
//! chainsplit_trace::enable();
//! {
//!     let mut outer = chainsplit_trace::span!("fixpoint", strategy = "semi-naive");
//!     let _inner = chainsplit_trace::span!("round", round = 0);
//!     outer.set_attr("rounds", 1);
//! }
//! chainsplit_trace::disable();
//! let spans = chainsplit_trace::snapshot();
//! assert_eq!(spans.len(), 2);
//! assert!(chainsplit_trace::export_chrome().starts_with('['));
//! ```

#![forbid(unsafe_code)]

pub mod json;

use json::Json;
use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as recorded when its guard dropped.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id of this span within the process.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Span name (e.g. `fixpoint`, `round`, `select`).
    pub name: String,
    /// Category (e.g. `phase`, `round`, `access`).
    pub cat: &'static str,
    /// Microseconds since the process trace anchor.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Attribute key/value pairs (predicate, strategy, chain level, access
    /// path, …), values pre-rendered to strings.
    pub attrs: Vec<(&'static str, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Ids of the open spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Turns span collection on. Existing records are kept; call [`clear`]
/// first to start a fresh trace.
pub fn enable() {
    anchor(); // pin the time origin no later than the first enable
    ENABLED.store(true, Ordering::Release);
}

/// Turns span collection off. Guards already open keep recording so the
/// trace stays balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being collected.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every collected record.
pub fn clear() {
    collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// The number of records collected so far.
pub fn span_count() -> usize {
    collector().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Id of the innermost open span on the current thread, if any.
pub fn current_span_id() -> Option<u64> {
    if !is_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// A copy of every collected record, in completion order.
pub fn snapshot() -> Vec<SpanRecord> {
    collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// An open span. Created via [`Span::enter`] or the [`span!`] macro;
/// recording happens when the guard drops. When tracing is disabled the
/// guard is inert and [`Span::set_attr`] is free.
#[must_use = "a span measures the scope it lives in"]
pub struct Span(Option<Open>);

struct Open {
    id: u64,
    parent: Option<u64>,
    depth: usize,
    tid: u64,
    name: String,
    cat: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// Opens a span in the default `span` category.
    pub fn enter(name: impl Into<String>) -> Span {
        Span::enter_cat(name, "span")
    }

    /// Opens a span in an explicit category.
    pub fn enter_cat(name: impl Into<String>, cat: &'static str) -> Span {
        if !is_enabled() {
            return Span(None);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let tid = TID.with(|t| *t);
        let (parent, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            let depth = s.len();
            s.push(id);
            (parent, depth)
        });
        Span(Some(Open {
            id,
            parent,
            depth,
            tid,
            name: name.into(),
            cat,
            start: Instant::now(),
            attrs: Vec::new(),
        }))
    }

    /// Opens a span in an explicit category with an explicit parent id,
    /// for spans that logically nest under a span on **another thread**
    /// (e.g. a `worker` span under the fixpoint `round` that spawned it).
    /// The span still joins this thread's stack so its own children nest
    /// normally. `None` falls back to the thread-local parent.
    pub fn enter_cat_under(
        name: impl Into<String>,
        cat: &'static str,
        parent: Option<u64>,
    ) -> Span {
        let mut span = Span::enter_cat(name, cat);
        if let (Some(open), Some(parent)) = (&mut span.0, parent) {
            open.parent = Some(parent);
        }
        span
    }

    /// The id this span will record under, or `None` when inert.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|open| open.id)
    }

    /// Attaches an attribute (no-op when the guard is inert). Values are
    /// rendered immediately so the borrow need not outlive the call.
    pub fn set_attr(&mut self, key: &'static str, value: impl Display) {
        if let Some(open) = &mut self.0 {
            open.attrs.push((key, value.to_string()));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        let dur_us = open.start.elapsed().as_micros() as u64;
        let start_us = open.start.saturating_duration_since(anchor()).as_micros() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last(), Some(&open.id), "span guards must nest");
            s.retain(|&id| id != open.id);
        });
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            depth: open.depth,
            tid: open.tid,
            name: open.name,
            cat: open.cat,
            start_us,
            dur_us,
            attrs: open.attrs,
        };
        collector()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }
}

/// Opens a [`Span`], optionally with attributes:
/// `span!("round", round = i, delta = n)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut __span = $crate::Span::enter($name);
        $(__span.set_attr(stringify!($key), &$value);)+
        __span
    }};
}

/// Renders the collected spans as a Chrome trace-event JSON array
/// (`ph: "X"` complete events, microsecond timestamps) — load it in
/// `chrome://tracing` or Perfetto.
pub fn export_chrome() -> String {
    let spans = snapshot();
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            let args: Vec<(String, Json)> = s
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), Json::str(v.clone())))
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::str(s.name.clone())),
                ("cat".into(), Json::str(s.cat)),
                ("ph".into(), Json::str("X")),
                ("ts".into(), Json::int(s.start_us as usize)),
                ("dur".into(), Json::int(s.dur_us as usize)),
                ("pid".into(), Json::int(1)),
                ("tid".into(), Json::int(s.tid as usize)),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::Arr(events).to_pretty()
}

/// Writes [`export_chrome`] output to `path`.
pub fn export_chrome_to(path: &std::path::Path) -> std::io::Result<usize> {
    let n = span_count();
    std::fs::write(path, export_chrome())?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global collector is shared across the test binary's threads, so
    // every test that inspects it filters on its own span names.

    #[test]
    fn disabled_guards_record_nothing() {
        disable();
        {
            let mut s = span!("disabled-probe", key = 1);
            s.set_attr("more", "x");
            assert!(!s.is_recording());
        }
        assert!(!snapshot().iter().any(|s| s.name == "disabled-probe"));
    }

    #[test]
    fn attributes_and_categories_are_recorded() {
        enable();
        {
            let mut s = Span::enter_cat("attr-probe", "access");
            s.set_attr("pred", "parent/2");
            s.set_attr("path", "index_hit");
        }
        disable();
        let spans = snapshot();
        let s = spans.iter().find(|s| s.name == "attr-probe").unwrap();
        assert_eq!(s.cat, "access");
        assert_eq!(s.attrs.len(), 2);
        assert_eq!(s.attrs[0], ("pred", "parent/2".to_string()));
    }

    #[test]
    fn cross_thread_parenting_with_enter_cat_under() {
        enable();
        let (round_id, worker_id, select_id);
        {
            let round = Span::enter_cat("parent-probe round", "round");
            round_id = round.id().expect("recording span has an id");
            let handle = std::thread::spawn(move || {
                let worker = Span::enter_cat_under("parent-probe worker", "worker", Some(round_id));
                let wid = worker.id().unwrap();
                let select = Span::enter_cat("parent-probe select", "access");
                let sid = select.id().unwrap();
                (wid, sid)
            });
            (worker_id, select_id) = handle.join().unwrap();
        }
        disable();
        let spans = snapshot();
        let worker = spans.iter().find(|s| s.id == worker_id).unwrap();
        assert_eq!(worker.parent, Some(round_id), "worker parents to the round");
        let select = spans.iter().find(|s| s.id == select_id).unwrap();
        assert_eq!(
            select.parent,
            Some(worker_id),
            "worker's children nest on its own thread"
        );
        assert_ne!(
            worker.tid,
            spans.iter().find(|s| s.id == round_id).unwrap().tid
        );
    }

    #[test]
    fn inert_spans_have_no_id_and_no_current() {
        disable();
        let s = Span::enter_cat_under("inert-probe", "worker", Some(42));
        assert_eq!(s.id(), None);
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn chrome_export_is_valid_json_with_event_keys() {
        enable();
        {
            let _outer = span!("export-outer", strategy = "magic");
            let _inner = span!("export-inner");
        }
        disable();
        let text = export_chrome();
        let doc = Json::parse(&text).expect("chrome export parses");
        let events = doc.as_array();
        assert!(events.len() >= 2);
        for e in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(e.get(key).is_some(), "missing {key} in {e:?}");
            }
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        }
    }
}
