//! Tracer invariants under concurrency: every guard produces exactly one
//! record (balance), and on each thread a child span's interval nests
//! inside its parent's (well-formed span tree).
//!
//! Runs as its own integration-test binary so no other test is writing to
//! the global collector concurrently.

use chainsplit_trace::{snapshot, SpanRecord};
use std::collections::HashMap;

const THREADS: usize = 8;
const OUTER_PER_THREAD: usize = 25;
const INNER_PER_OUTER: usize = 4;

#[test]
fn spans_balance_and_nest_across_threads() {
    chainsplit_trace::clear();
    chainsplit_trace::enable();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..OUTER_PER_THREAD {
                    let mut outer = chainsplit_trace::span!("outer", thread = t, iter = i);
                    for j in 0..INNER_PER_OUTER {
                        let _inner = chainsplit_trace::span!("inner", j = j);
                        // A grandchild exercises depth > 1.
                        let _leaf = chainsplit_trace::Span::enter_cat("leaf", "access");
                    }
                    outer.set_attr("done", true);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    chainsplit_trace::disable();

    let spans = snapshot();

    // Balance: one record per guard, nothing lost and nothing doubled.
    let expected = THREADS * OUTER_PER_THREAD * (1 + 2 * INNER_PER_OUTER);
    assert_eq!(spans.len(), expected);
    let mut ids = spans.iter().map(|s| s.id).collect::<Vec<_>>();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), expected, "span ids must be unique");

    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for s in &spans {
        match s.parent {
            None => assert_eq!(s.depth, 0, "orphan span must be top-level: {s:?}"),
            Some(pid) => {
                let p = by_id.get(&pid).expect("parent was recorded");
                // Parents stay on the thread that opened them.
                assert_eq!(p.tid, s.tid, "parent on another thread: {s:?}");
                assert_eq!(s.depth, p.depth + 1, "depth mismatch: {s:?}");
                // Temporal containment: the child ran within the parent
                // (2 µs of slack absorbs microsecond truncation).
                assert!(p.start_us <= s.start_us, "child started early: {s:?}");
                assert!(
                    s.start_us + s.dur_us <= p.start_us + p.dur_us + 2,
                    "child {s:?} outlived parent {p:?}"
                );
            }
        }
    }

    // Every outer span carries its attributes, including ones set late.
    let outers: Vec<_> = spans.iter().filter(|s| s.name == "outer").collect();
    assert_eq!(outers.len(), THREADS * OUTER_PER_THREAD);
    for o in outers {
        assert!(o.attrs.iter().any(|(k, v)| *k == "done" && v == "true"));
    }
}
