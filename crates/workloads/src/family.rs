//! Family / census generators for `sg` and `scsg`.
//!
//! Deterministic: person `g{generation}_{country}_{index}` has parent
//! `g{generation-1}_{country}_{index}` (lineages never cross), persons of
//! the same country and generation are pairwise `same_country`, and the
//! generation-0 cohort of each country is pairwise `sibling`.
//!
//! The knobs map directly onto the paper's quantitative measures: with `P`
//! people per country per generation, the join expansion ratio of
//! `same_country` given one bound argument is exactly `P`; `parent` is
//! always 1:1.

use chainsplit_logic::{Atom, Term};

/// Configuration for the family generator.
#[derive(Clone, Copy, Debug)]
pub struct FamilyConfig {
    /// Number of countries.
    pub countries: usize,
    /// People per country per generation.
    pub people_per_country: usize,
    /// Generations below generation 0 (queries start at the deepest).
    pub generations: usize,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            countries: 2,
            people_per_country: 8,
            generations: 3,
        }
    }
}

fn person(generation: usize, country: usize, index: usize) -> Term {
    Term::sym(&format!("g{generation}_{country}_{index}"))
}

/// Generates the EDB facts (`parent`, `same_country`, `sibling`).
pub fn family_facts(cfg: FamilyConfig) -> Vec<Atom> {
    let mut facts = Vec::new();
    for c in 0..cfg.countries {
        for g in 0..=cfg.generations {
            for i in 0..cfg.people_per_country {
                if g > 0 {
                    facts.push(Atom::new(
                        "parent",
                        vec![person(g, c, i), person(g - 1, c, i)],
                    ));
                }
                for j in 0..cfg.people_per_country {
                    facts.push(Atom::new(
                        "same_country",
                        vec![person(g, c, i), person(g, c, j)],
                    ));
                }
            }
        }
        // Generation-0 siblings: a ring so everyone has two.
        let p = cfg.people_per_country;
        for i in 0..p {
            let j = (i + 1) % p;
            if i != j {
                facts.push(Atom::new("sibling", vec![person(0, c, i), person(0, c, j)]));
                facts.push(Atom::new("sibling", vec![person(0, c, j), person(0, c, i)]));
            }
        }
    }
    facts
}

/// The name of a person term (for queries): deepest generation, country 0.
pub fn query_person(cfg: FamilyConfig) -> String {
    format!("g{}_0_0", cfg.generations)
}

/// Total fact count the configuration produces (for table headers).
pub fn fact_count(cfg: FamilyConfig) -> usize {
    family_facts(cfg).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::Pred;
    use chainsplit_relation::{Database, Stats};

    #[test]
    fn sizes_match_configuration() {
        let cfg = FamilyConfig {
            countries: 2,
            people_per_country: 4,
            generations: 2,
        };
        let db = Database::from_facts(family_facts(cfg));
        // parent: countries * generations * people.
        assert_eq!(
            db.relation(Pred::new("parent", 2)).unwrap().len(),
            2 * 2 * 4
        );
        // same_country: countries * (generations+1) * people^2.
        assert_eq!(
            db.relation(Pred::new("same_country", 2)).unwrap().len(),
            2 * 3 * 16
        );
        // sibling ring: 2 per adjacent pair per country.
        assert_eq!(db.relation(Pred::new("sibling", 2)).unwrap().len(), 2 * 8);
    }

    #[test]
    fn expansion_ratio_is_people_per_country() {
        let cfg = FamilyConfig {
            countries: 3,
            people_per_country: 7,
            generations: 1,
        };
        let db = Database::from_facts(family_facts(cfg));
        let stats = Stats::new(&db);
        assert_eq!(stats.expansion(Pred::new("same_country", 2), &[0]), 7.0);
        assert_eq!(stats.expansion(Pred::new("parent", 2), &[0]), 1.0);
    }

    #[test]
    fn determinism() {
        let cfg = FamilyConfig::default();
        assert_eq!(family_facts(cfg), family_facts(cfg));
        assert_eq!(query_person(cfg), "g3_0_0");
    }
}
