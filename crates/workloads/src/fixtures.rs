//! The paper's fixture programs, verbatim.
//!
//! Every worked example of the chain-split paper as parse-ready source:
//! load one with [`chainsplit_logic::parse_program`] or
//! `DeductiveDb::load`.

/// Same-generation (Example 1.1, rules (1.1)–(1.2)).
pub const SG: &str = "sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).";

/// Same-country same-generation (Example 1.2, rules (1.5)–(1.7)): the
/// motivating case for efficiency-based chain-split — `same_country` links
/// the two `parent` atoms into a single chain generating path.
pub const SCSG: &str = "scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).";

/// List append (rules (1.13)–(1.14)); compiled form (1.17) is a single
/// chain of two `cons` atoms — the motivating case for finiteness-based
/// chain-split.
pub const APPEND: &str = "append([], L, L).
append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

/// Insertion sort (Example 4.1, rules (4.1)–(4.5)): a nested linear
/// recursion (`insert` inside `isort`).
pub const ISORT: &str = "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
isort([], []).
insert(X, [], [X]).
insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.";

/// Quick sort (Example 4.2, rules (4.16)–(4.30)): a nonlinear recursion.
pub const QSORT: &str = "qsort([X | Xs], Ys) :- partition(Xs, X, Littles, Bigs),
    qsort(Littles, Ls), qsort(Bigs, Bs), append(Ls, [X | Bs], Ys).
qsort([], []).
partition([X | Xs], Y, [X | Ls], Bs) :- X <= Y, partition(Xs, Y, Ls, Bs).
partition([X | Xs], Y, Ls, [X | Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
partition([], Y, [], []).
append([], L, L).
append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

/// The travel recursion (§3.3, rules (3.5)–(3.6)): itineraries with fare
/// summing and flight-number list building — the constraint-pushing case.
///
/// `travel(L, D, DT, A, AT, F)`: flight-number list `L`, departure airport
/// `D` and time `DT`, arrival airport `A` and time `AT`, total fare `F`.
pub const TRAVEL: &str =
    "travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1),
    travel(L1, A1, DT1, A, AT, F2), AT1 <= DT1, plus(F1, F2, F), cons(Fno, L1, L).";

/// Transitive closure — the canonical single-chain function-free
/// recursion (§1.1's "evaluated efficiently by a transitive closure
/// algorithm").
pub const PATH: &str = "path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).";

/// The deliberately *merged* variant of `sg`: both chains crammed into one
/// path over the **cross product** of the parent relations (§1.1's
/// anti-pattern; experiment E2). `step` pairs advance both sides at once
/// (`step` is quadratic in the lineage count), `spair` marks sibling
/// pairs, and `mk` seeds the candidate pairs for the query person.
pub const SG_MERGED: &str = "msg(Y) :- mk(Y, P), reach(P).
reach(P) :- spair(P).
reach(P) :- step(P, P1), reach(P1).";

/// The skewed star join (experiment E9, DESIGN.md §14): three wide spoke
/// relations share the hub variable `X`, and the small selective `hub`
/// relation is written *last*. Every atom is binary with the same free
/// count, so the arity-based fallback ordering degenerates to
/// left-to-right — the gap between planner-off (materialize the spoke
/// expansion, filter by hub at the end) and planner-on (hub first via the
/// `|p| / distinct(p)` estimate, then indexed spoke probes) is exactly
/// what statistics see and syntax cannot.
pub const STAR_JOIN: &str = "q(A, B, C, H) :- f1(X, A), f2(X, B), f3(X, C), hub(X, H).";

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    #[test]
    fn all_fixtures_parse() {
        for (name, src) in [
            ("SG", SG),
            ("SCSG", SCSG),
            ("APPEND", APPEND),
            ("ISORT", ISORT),
            ("QSORT", QSORT),
            ("TRAVEL", TRAVEL),
            ("PATH", PATH),
            ("SG_MERGED", SG_MERGED),
            ("STAR_JOIN", STAR_JOIN),
        ] {
            assert!(parse_program(src).is_ok(), "fixture {name} must parse");
        }
    }

    #[test]
    fn fixture_rule_counts() {
        assert_eq!(parse_program(SG).unwrap().rules.len(), 2);
        assert_eq!(parse_program(ISORT).unwrap().rules.len(), 5);
        assert_eq!(parse_program(QSORT).unwrap().rules.len(), 7);
        assert_eq!(parse_program(TRAVEL).unwrap().rules.len(), 2);
    }
}
