//! Flight-network generator for the `travel` experiments (§3.3).
//!
//! Airports `a0 … a{n-1}` on a line with a guaranteed itinerary end to end,
//! plus seeded-random extra hops. Departure/arrival times are arranged so
//! every forward connection is feasible (`AT1 <= DT1` always holds between
//! consecutive hops), which keeps the workload's selectivity in the fare
//! constraint where the experiment wants it.

use chainsplit_logic::{Atom, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the flight generator.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    pub airports: usize,
    /// Extra random forward flights added on top of the line.
    pub extra_flights: usize,
    /// Fares are drawn uniformly from this range.
    pub fare_min: i64,
    pub fare_max: i64,
    pub seed: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            airports: 16,
            extra_flights: 16,
            fare_min: 100,
            fare_max: 400,
            seed: 42,
        }
    }
}

fn airport(i: usize) -> Term {
    Term::sym(&format!("a{i}"))
}

/// Generates `flight(Fno, Dep, DepTime, Arr, ArrTime, Fare)` facts.
pub fn flight_facts(cfg: FlightConfig) -> Vec<Atom> {
    assert!(cfg.airports >= 2);
    assert!(cfg.fare_min >= 0, "fares must be non-negative for pruning");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut facts = Vec::new();
    let mut fno: i64 = 0;
    let push = |facts: &mut Vec<Atom>, from: usize, to: usize, fare: i64, fno: &mut i64| {
        // Times: all departures happen "late" at the source index and
        // arrivals "early" at the destination index, so AT <= DT holds for
        // every forward connection.
        let dt = (from as i64) * 1000 + 500;
        let at = (to as i64) * 1000;
        facts.push(Atom::new(
            "flight",
            vec![
                Term::Int(*fno),
                airport(from),
                Term::Int(dt),
                airport(to),
                Term::Int(at),
                Term::Int(fare),
            ],
        ));
        *fno += 1;
    };
    for i in 0..cfg.airports - 1 {
        let fare = rng.gen_range(cfg.fare_min..=cfg.fare_max);
        push(&mut facts, i, i + 1, fare, &mut fno);
    }
    for _ in 0..cfg.extra_flights {
        let from = rng.gen_range(0..cfg.airports - 1);
        let to = rng.gen_range(from + 1..cfg.airports);
        let fare = rng.gen_range(cfg.fare_min..=cfg.fare_max);
        push(&mut facts, from, to, fare, &mut fno);
    }
    facts
}

/// The first and last airport names, for queries.
pub fn endpoints(cfg: FlightConfig) -> (String, String) {
    ("a0".to_string(), format!("a{}", cfg.airports - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::Pred;
    use chainsplit_relation::Database;

    #[test]
    fn line_plus_extras() {
        let cfg = FlightConfig {
            airports: 8,
            extra_flights: 5,
            ..FlightConfig::default()
        };
        let db = Database::from_facts(flight_facts(cfg));
        let n = db.relation(Pred::new("flight", 6)).unwrap().len();
        // Distinct flight numbers make every fact unique.
        assert_eq!(n, 7 + 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FlightConfig::default();
        assert_eq!(flight_facts(cfg), flight_facts(cfg));
        let other = FlightConfig { seed: 7, ..cfg };
        assert_ne!(flight_facts(cfg), flight_facts(other));
    }

    #[test]
    fn fares_in_range_and_nonnegative() {
        let cfg = FlightConfig::default();
        for f in flight_facts(cfg) {
            let Term::Int(fare) = f.args[5] else { panic!() };
            assert!((cfg.fare_min..=cfg.fare_max).contains(&fare));
        }
    }

    #[test]
    fn forward_connections_feasible() {
        // For every pair (f1 arriving at X, f2 departing X): AT <= DT.
        let facts = flight_facts(FlightConfig::default());
        for f1 in &facts {
            for f2 in &facts {
                if f1.args[3] == f2.args[1] {
                    let Term::Int(at) = f1.args[4] else { panic!() };
                    let Term::Int(dt) = f2.args[2] else { panic!() };
                    assert!(at <= dt, "infeasible connection generated");
                }
            }
        }
    }
}
