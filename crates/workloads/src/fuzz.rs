//! Deterministic random program/EDB generation for differential fuzzing.
//!
//! [`gen_case`] maps a `u64` seed to a [`FuzzCase`]: a program covering one
//! of the paper's recursion shapes plus a random EDB and a query. The
//! generator is pure — the same seed always yields the same case on every
//! platform — so a failing seed printed by the fuzzer is a complete
//! reproduction recipe.

use crate::{fixtures, flight_facts, lists, random_dag_edges, FlightConfig};
use std::fmt;

/// SplitMix64 (Steele et al.): a tiny, statistically solid, portable PRNG.
/// Every stream is a pure function of the seed — exactly what a
/// reproducible fuzzer needs, and no `rand` dependency.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n = 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Which evaluation strategies a generated program can run under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyClass {
    /// Every strategy applies.
    All,
    /// Only goal-directed resolution (auto / top-down): the program is a
    /// functional recursion whose exit rule denotes an infinite relation,
    /// so the set-oriented bottom-up family cannot run.
    GoalDirected,
    /// Only the set-oriented family (and auto, which budget-stops
    /// gracefully): the EDB is cyclic, so plain SLD recursion diverges.
    BottomUp,
}

/// One generated differential-fuzzing case.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The seed that produced this case (reproduction recipe).
    pub seed: u64,
    /// Which program shape was generated (`sg`, `scsg`, `path`, `trip`,
    /// `append`, `travel`).
    pub shape: &'static str,
    /// The rule portion of the program.
    pub rules: String,
    /// The EDB, one fact per entry — kept separate so a failing case can
    /// shrink by halving the fact list.
    pub facts: Vec<String>,
    /// The query to pose.
    pub query: String,
    /// Which strategies apply to this program/EDB combination.
    pub class: StrategyClass,
}

impl FuzzCase {
    /// The full loadable program: rules first, then the EDB.
    pub fn program(&self) -> String {
        let mut src = String::from(&self.rules);
        src.push('\n');
        for f in &self.facts {
            src.push_str(f);
            src.push('\n');
        }
        src
    }
}

impl fmt::Display for FuzzCase {
    /// Corpus format: a `% query:` header line, then the program — the
    /// same layout `tests/corpus/*.dl` files use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% query: {}", self.query)?;
        writeln!(f, "% shape: {} (seed {})", self.shape, self.seed)?;
        match self.class {
            StrategyClass::All => {}
            StrategyClass::GoalDirected => writeln!(f, "% strategies: goal-directed")?,
            StrategyClass::BottomUp => writeln!(f, "% strategies: bottom-up")?,
        }
        write!(f, "{}", self.program())
    }
}

/// Parses the regression-corpus format (`tests/corpus/*.dl` and fuzzer
/// output): `%`-prefixed header/comment lines — only `% query:` and
/// `% strategies:` are significant — then the program text.
///
/// # Panics
///
/// Panics when the `% query:` header is missing or a `% strategies:`
/// value is unknown: corpus files are repository fixtures, so a malformed
/// one is a bug worth failing loudly on.
pub fn parse_corpus(name: &'static str, text: &str) -> FuzzCase {
    let mut query = None;
    let mut class = StrategyClass::All;
    let mut body = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("% query:") {
            query = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("% strategies:") {
            class = match rest.trim() {
                "goal-directed" => StrategyClass::GoalDirected,
                "bottom-up" => StrategyClass::BottomUp,
                other => panic!("{name}: unknown strategies class `{other}`"),
            };
        } else if line.trim_start().starts_with('%') {
            // provenance comments
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    FuzzCase {
        seed: 0,
        shape: name,
        rules: body,
        facts: Vec::new(),
        query: query.unwrap_or_else(|| panic!("{name}: missing `% query:` header")),
        class,
    }
}

/// One scripted EDB mutation in a [`MutationScript`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutOp {
    /// Insert a ground fact — possibly a duplicate of a live fact, or the
    /// revival of one retracted earlier in the script.
    Insert(String),
    /// Retract a ground fact — possibly one already gone (a no-op
    /// retraction, which must leave cached answers hitting).
    Retract(String),
}

impl fmt::Display for MutOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutOp::Insert(a) => write!(f, "insert {a}"),
            MutOp::Retract(a) => write!(f, "retract {a}"),
        }
    }
}

/// A mutation session: a base [`FuzzCase`] plus an op sequence replayed
/// in order, re-querying after every mutation. The differential oracle
/// runs it in lockstep against a twin rebuilt from scratch after each op.
#[derive(Clone, Debug)]
pub struct MutationScript {
    pub case: FuzzCase,
    pub ops: Vec<MutOp>,
}

impl fmt::Display for MutationScript {
    /// Corpus format: the [`FuzzCase`] headers plus one `% mutate:` line
    /// per op, then the program — parseable by [`parse_mutation_corpus`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% query: {}", self.case.query)?;
        writeln!(f, "% shape: {} (seed {})", self.case.shape, self.case.seed)?;
        match self.case.class {
            StrategyClass::All => {}
            StrategyClass::GoalDirected => writeln!(f, "% strategies: goal-directed")?,
            StrategyClass::BottomUp => writeln!(f, "% strategies: bottom-up")?,
        }
        for op in &self.ops {
            writeln!(f, "% mutate: {op}")?;
        }
        write!(f, "{}", self.case.program())
    }
}

/// Parses the mutation-corpus format: the [`parse_corpus`] layout plus
/// `% mutate: retract p(a)` / `% mutate: insert p(a)` header lines,
/// replayed in file order.
///
/// # Panics
///
/// Panics on an unknown mutation verb — corpus files are repository
/// fixtures, so a malformed one is a bug worth failing loudly on.
pub fn parse_mutation_corpus(name: &'static str, text: &str) -> MutationScript {
    let mut case = parse_corpus(name, text);
    // Corpus files inline their EDB in the program body, but the mutation
    // oracle needs it as a separate fact list — the twin is rebuilt from
    // that list after every op, and the presence check for retractions
    // keys off it. Pull ground unit clauses (no `:-`, no variable — our
    // corpus facts are all-lowercase) out of the rule text, splitting
    // multi-fact lines into one entry per fact.
    let body = std::mem::take(&mut case.rules);
    let mut rules = String::new();
    for line in body.lines() {
        let t = line.trim();
        if t.is_empty() || t.contains(":-") || t.chars().any(|c| c.is_ascii_uppercase()) {
            rules.push_str(line);
            rules.push('\n');
        } else {
            for clause in t.split('.') {
                let clause = clause.trim();
                if !clause.is_empty() {
                    case.facts.push(format!("{clause}."));
                }
            }
        }
    }
    case.rules = rules;
    let mut ops = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("% mutate:") {
            let rest = rest.trim();
            if let Some(a) = rest.strip_prefix("retract ") {
                ops.push(MutOp::Retract(a.trim().trim_end_matches('.').to_string()));
            } else if let Some(a) = rest.strip_prefix("insert ") {
                ops.push(MutOp::Insert(a.trim().trim_end_matches('.').to_string()));
            } else {
                panic!("{name}: unknown mutation op `{rest}`");
            }
        }
    }
    MutationScript { case, ops }
}

/// Maps `seed` to a deterministic mutation session over [`gen_case`]'s
/// case for the same seed. Ops draw from the case's own EDB — blind to
/// liveness, so the stream naturally covers retract-existing,
/// retract-already-gone (no-op), insert-duplicate, and insert-revive.
/// Shapes with an empty EDB (`append`) yield an empty op list: the
/// session is then a pure query replay.
pub fn gen_mutation_script(seed: u64) -> MutationScript {
    let case = gen_case(seed);
    let mut rng = SplitMix64::new(seed ^ 0xD1ED_0D8E_D15E_ED00);
    let pool: Vec<String> = case
        .facts
        .iter()
        .map(|f| f.trim().trim_end_matches('.').to_string())
        .collect();
    let mut ops = Vec::new();
    if !pool.is_empty() {
        let n_ops = 3 + rng.below(4) as usize;
        for _ in 0..n_ops {
            let fact = pool[rng.below(pool.len() as u64) as usize].clone();
            // Retraction-heavy: that is the path under test.
            if rng.chance(2, 3) {
                ops.push(MutOp::Retract(fact));
            } else {
                ops.push(MutOp::Insert(fact));
            }
        }
    }
    MutationScript { case, ops }
}

/// A random acyclic `parent` forest with `sibling` pairs: facts for the
/// `sg` / `scsg` shapes. `parent(p_i, p_j)` only for `i > j`.
fn family_forest(rng: &mut SplitMix64, n: usize, facts: &mut Vec<String>) {
    for i in 1..n {
        let j = rng.below(i as u64);
        facts.push(format!("parent(p{i}, p{j})."));
        if rng.chance(1, 3) {
            let k = rng.below(i as u64);
            facts.push(format!("parent(p{i}, p{k})."));
        }
    }
    for _ in 0..n.div_ceil(2) {
        let a = rng.below(n as u64);
        let b = rng.below(n as u64);
        facts.push(format!("sibling(p{a}, p{b})."));
        facts.push(format!("sibling(p{b}, p{a})."));
    }
}

/// Maps `seed` to a deterministic random case covering the paper's
/// program shapes.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    let shape = rng.below(6);
    let mut facts: Vec<String> = Vec::new();
    match shape {
        // Same generation over a random family forest.
        0 => {
            let n = 3 + rng.below(20) as usize;
            family_forest(&mut rng, n, &mut facts);
            let probe = rng.below(n as u64);
            FuzzCase {
                seed,
                shape: "sg",
                rules: fixtures::SG.to_string(),
                facts,
                query: format!("sg(p{probe}, Y)"),
                class: StrategyClass::All,
            }
        }
        // Same-country same-generation: sg plus a same_country link
        // between the two parent atoms (Example 1.2's chain).
        1 => {
            let n = 3 + rng.below(16) as usize;
            family_forest(&mut rng, n, &mut facts);
            for _ in 0..n {
                let a = rng.below(n as u64);
                let b = rng.below(n as u64);
                facts.push(format!("same_country(p{a}, p{b})."));
                facts.push(format!("same_country(p{b}, p{a})."));
            }
            let probe = rng.below(n as u64);
            FuzzCase {
                seed,
                shape: "scsg",
                rules: fixtures::SCSG.to_string(),
                facts,
                query: format!("scsg(p{probe}, Y)"),
                class: StrategyClass::All,
            }
        }
        // Transitive closure over a random DAG (sometimes with a back
        // edge, making it cyclic — bottom-up fixpoints must still
        // terminate, while plain SLD would diverge, so cyclic instances
        // run the set-oriented family only).
        2 => {
            let n = 3 + rng.below(16) as usize;
            for e in random_dag_edges(n, 1 + rng.below(3) as usize, rng.next_u64()) {
                facts.push(format!("{e}."));
            }
            let cyclic = rng.chance(1, 3);
            if cyclic {
                let a = rng.below(n as u64);
                facts.push(format!("edge(n{}, n{}).", n - 1, a));
            }
            let probe = rng.below(n as u64);
            FuzzCase {
                seed,
                shape: "path",
                rules: fixtures::PATH.to_string(),
                facts,
                query: format!("path(n{probe}, Y)"),
                class: if cyclic {
                    StrategyClass::BottomUp
                } else {
                    StrategyClass::All
                },
            }
        }
        // Weighted reachability: a mixed-groundness recursive body (two
        // stored atoms plus an arithmetic builtin whose inputs only
        // ground mid-join).
        3 => {
            let n = 3 + rng.below(10) as usize;
            for i in 1..n {
                let j = rng.below(i as u64);
                let c = 1 + rng.below(9);
                facts.push(format!("edge2(n{j}, n{i}, {c})."));
                if rng.chance(1, 4) {
                    let k = rng.below(i as u64);
                    let c2 = 1 + rng.below(9);
                    facts.push(format!("edge2(n{k}, n{i}, {c2})."));
                }
            }
            let probe = rng.below(n as u64);
            FuzzCase {
                seed,
                shape: "trip",
                rules: "trip(X, Y, C) :- edge2(X, Y, C).
trip(X, Z, C) :- edge2(X, Y, C1), trip(Y, Z, C2), plus(C1, C2, C)."
                    .to_string(),
                facts,
                query: format!("trip(n{probe}, Z, C)"),
                class: StrategyClass::All,
            }
        }
        // append backwards: the functional chain-split case (§2.2).
        4 => {
            let len = rng.below(9) as usize;
            let list = lists::random_list(len, rng.next_u64());
            FuzzCase {
                seed,
                shape: "append",
                rules: fixtures::APPEND.to_string(),
                facts,
                query: format!("append(U, V, {list})"),
                class: StrategyClass::GoalDirected,
            }
        }
        // travel with fare summing, sometimes with a pushable fare
        // constraint (§3.3 / Algorithm 3.3).
        _ => {
            let cfg = FlightConfig {
                airports: 3 + rng.below(5) as usize,
                extra_flights: rng.below(6) as usize,
                fare_min: 50,
                fare_max: 400,
                seed: rng.next_u64(),
            };
            for a in flight_facts(cfg) {
                facts.push(format!("{a}."));
            }
            let (from, to) = crate::endpoints(cfg);
            let base = format!("travel(L, {from}, DT, {to}, AT, F)");
            let query = if rng.chance(1, 2) {
                format!("{base}, F <= {}", 100 + rng.below(1500))
            } else {
                base
            };
            FuzzCase {
                seed,
                shape: "travel",
                rules: fixtures::TRAVEL.to_string(),
                facts,
                query,
                class: StrategyClass::GoalDirected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..64 {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.program(), b.program(), "seed {seed}");
            assert_eq!(a.query, b.query, "seed {seed}");
            assert_eq!(a.shape, b.shape, "seed {seed}");
        }
    }

    #[test]
    fn all_shapes_appear_in_small_seed_range() {
        let mut shapes: Vec<&str> = (0..48).map(|s| gen_case(s).shape).collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert_eq!(
            shapes,
            ["append", "path", "scsg", "sg", "travel", "trip"],
            "every generator shape must be reachable"
        );
    }

    #[test]
    fn generated_programs_parse() {
        for seed in 0..48 {
            let case = gen_case(seed);
            chainsplit_logic::parse_program(&case.program())
                .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", case.shape));
        }
    }

    #[test]
    fn mutation_scripts_are_deterministic_and_round_trip() {
        for seed in 0..48 {
            let a = gen_mutation_script(seed);
            let b = gen_mutation_script(seed);
            assert_eq!(a.ops, b.ops, "seed {seed}");
            assert_eq!(a.case.program(), b.case.program(), "seed {seed}");
            let parsed = parse_mutation_corpus("round-trip", &a.to_string());
            assert_eq!(parsed.ops, a.ops, "seed {seed}");
            assert_eq!(parsed.case.query, a.case.query, "seed {seed}");
            assert_eq!(parsed.case.class, a.case.class, "seed {seed}");
            // The EDB must round-trip back out of the program body as a
            // separate fact list (the oracle's twin is rebuilt from it).
            let mut want: Vec<String> = a.case.facts.iter().map(|f| f.trim().into()).collect();
            let mut got = parsed.case.facts.clone();
            want.sort();
            got.sort();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn mutation_scripts_mutate_nonempty_edbs() {
        let mut with_ops = 0;
        let mut retracts = 0;
        for seed in 0..48 {
            let s = gen_mutation_script(seed);
            if s.case.facts.is_empty() {
                assert!(s.ops.is_empty(), "seed {seed}: nothing to mutate");
            } else {
                assert!(!s.ops.is_empty(), "seed {seed}");
                with_ops += 1;
                retracts += s
                    .ops
                    .iter()
                    .filter(|o| matches!(o, MutOp::Retract(_)))
                    .count();
            }
        }
        assert!(with_ops > 30, "most shapes carry an EDB: {with_ops}");
        assert!(retracts > 0, "the stream must exercise retraction");
    }

    #[test]
    fn splitmix_streams_differ_by_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
