//! Graph generators for transitive-closure experiments.

use chainsplit_logic::{Atom, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn node(i: usize) -> Term {
    Term::sym(&format!("n{i}"))
}

/// A simple chain `n0 -> n1 -> … -> n{len}` as `edge/2` facts.
pub fn chain_edges(len: usize) -> Vec<Atom> {
    (0..len)
        .map(|i| Atom::new("edge", vec![node(i), node(i + 1)]))
        .collect()
}

/// A complete `fanout`-ary tree of the given depth, edges pointing from
/// parent to child.
pub fn tree_edges(depth: usize, fanout: usize) -> Vec<Atom> {
    let mut edges = Vec::new();
    let mut frontier = vec![0usize];
    let mut next_id = 1usize;
    for _ in 0..depth {
        let mut next = Vec::new();
        for &p in &frontier {
            for _ in 0..fanout {
                edges.push(Atom::new("edge", vec![node(p), node(next_id)]));
                next.push(next_id);
                next_id += 1;
            }
        }
        frontier = next;
    }
    edges
}

/// A random DAG: nodes `0..n`, edges only forward, `avg_degree` per node.
pub fn random_dag_edges(n: usize, avg_degree: usize, seed: u64) -> Vec<Atom> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n.saturating_sub(1) {
        // Guarantee connectivity along the spine.
        edges.push(Atom::new("edge", vec![node(i), node(i + 1)]));
        for _ in 1..avg_degree {
            let j = rng.gen_range(i + 1..n);
            edges.push(Atom::new("edge", vec![node(i), node(j)]));
        }
    }
    edges
}

/// The cross-product "merged chain" workload of §1.1 / experiment E2: the
/// two `parent` chains of `sg` crammed into one path over pairs.
///
/// Given the family-style lineage of `people` lineages and `generations`
/// levels, produces:
/// - `step((x, y), (x1, y1))` for every pair of parent steps — the merged
///   relation is the **cross product** of the X-side and Y-side parent
///   relations, which is why merging is "terribly inefficient" \[14\];
/// - `spair((x, y))` for sibling pairs (the merged exit);
/// - `back` as the identity on pairs (the merged return side).
///
/// Pairs are encoded as symbols `x__y` to stay function-free.
///
/// Produces `step` (the quadratic cross-product of parent steps), `spair`
/// (sibling pairs at generation 0), and `mk(Y, P)` seeding the candidate
/// pairs `(query person, Y)` for the deepest-generation lineage-0 person.
pub fn merged_sg_facts(people: usize, generations: usize) -> Vec<Atom> {
    let person = |g: usize, i: usize| format!("g{g}_{i}");
    let pair = |a: &str, b: &str| Term::sym(&format!("{a}__{b}"));
    let mut facts = Vec::new();
    for g in 1..=generations {
        for i in 0..people {
            for j in 0..people {
                // step: both sides move one generation up, lineages fixed.
                facts.push(Atom::new(
                    "step",
                    vec![
                        pair(&person(g, i), &person(g, j)),
                        pair(&person(g - 1, i), &person(g - 1, j)),
                    ],
                ));
            }
        }
    }
    for i in 0..people {
        let j = (i + 1) % people;
        if i != j {
            facts.push(Atom::new("spair", vec![pair(&person(0, i), &person(0, j))]));
            facts.push(Atom::new("spair", vec![pair(&person(0, j), &person(0, i))]));
        }
    }
    // Candidate pairs for the query person (deepest generation, lineage 0).
    let qp = person(generations, 0);
    for j in 0..people {
        facts.push(Atom::new(
            "mk",
            vec![
                Term::sym(&person(generations, j)),
                pair(&qp, &person(generations, j)),
            ],
        ));
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_size() {
        assert_eq!(chain_edges(5).len(), 5);
        assert_eq!(chain_edges(0).len(), 0);
    }

    #[test]
    fn tree_size() {
        // Binary tree depth 3: 2 + 4 + 8 = 14 edges.
        assert_eq!(tree_edges(3, 2).len(), 14);
    }

    #[test]
    fn dag_deterministic_and_connected() {
        let a = random_dag_edges(20, 3, 9);
        assert_eq!(a, random_dag_edges(20, 3, 9));
        // Spine present.
        assert!(a.contains(&Atom::new("edge", vec![Term::sym("n0"), Term::sym("n1")])));
    }

    #[test]
    fn merged_sg_is_quadratic() {
        // people=4, generations=2: step has 2 * 16 = 32 tuples (vs the
        // unmerged parent's 2 * 4 = 8) — the cross-product blow-up.
        let facts = merged_sg_facts(4, 2);
        let steps = facts
            .iter()
            .filter(|a| a.pred.name.as_str() == "step")
            .count();
        assert_eq!(steps, 32);
        let mks = facts
            .iter()
            .filter(|a| a.pred.name.as_str() == "mk")
            .count();
        assert_eq!(mks, 4);
    }
}
