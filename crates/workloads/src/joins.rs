//! Join-order workloads for the cost-based planner experiments.

use chainsplit_logic::{Atom, Term};

/// Facts for the skewed star join ([`crate::fixtures::STAR_JOIN`]):
/// `spokes` distinct hub values `x0..x{spokes}`, each carrying `fanout`
/// tuples in every wide relation `f1`/`f2`/`f3`, and only `hubs` of the
/// values present in the selective `hub` relation (each with one
/// payload, keeping `hub` binary like the spokes so arity alone cannot
/// rank it).
///
/// Each spoke relation has `spokes * fanout` tuples with `spokes`
/// distinct `X` values, so its expansion on a bound `X` is `fanout`,
/// while a full scan costs `spokes * fanout` — the skew the planner's
/// `|p| / distinct(p)` estimate is built to see.
pub fn star_join_facts(hubs: usize, spokes: usize, fanout: usize) -> Vec<Atom> {
    assert!(hubs <= spokes, "hub values must exist among the spokes");
    let x = |i: usize| Term::sym(&format!("x{i}"));
    let mut facts = Vec::new();
    for rel in ["f1", "f2", "f3"] {
        for i in 0..spokes {
            for j in 0..fanout {
                facts.push(Atom::new(
                    rel,
                    vec![x(i), Term::sym(&format!("{rel}_v{i}_{j}"))],
                ));
            }
        }
    }
    for i in 0..hubs {
        facts.push(Atom::new("hub", vec![x(i), Term::sym(&format!("h{i}"))]));
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_join_sizes() {
        let facts = star_join_facts(2, 8, 4);
        let count = |p: &str| facts.iter().filter(|a| a.pred.name.as_str() == p).count();
        assert_eq!(count("f1"), 32);
        assert_eq!(count("f2"), 32);
        assert_eq!(count("f3"), 32);
        assert_eq!(count("hub"), 2);
    }
}
