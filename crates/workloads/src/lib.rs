//! # chainsplit-workloads
//!
//! Deterministic synthetic workloads for the chain-split experiments:
//! the paper's fixture programs ([`fixtures`]), family/census data for
//! `sg`/`scsg` ([`family`]), flight networks for `travel` ([`flights`]),
//! integer lists for the sorting examples ([`lists`]), and graphs for
//! transitive closure including the merged-chain cross-product workload
//! ([`graphs`]).
//!
//! Everything is seeded and reproducible; the knobs map onto the paper's
//! quantitative measures (join expansion ratio, selectivity, chain depth).

#![forbid(unsafe_code)]

pub mod family;
pub mod fixtures;
pub mod flights;
pub mod fuzz;
pub mod graphs;
pub mod joins;
pub mod lists;

pub use family::{fact_count, family_facts, query_person, FamilyConfig};
pub use flights::{endpoints, flight_facts, FlightConfig};
pub use fuzz::{
    gen_case, gen_mutation_script, parse_corpus, parse_mutation_corpus, FuzzCase, MutOp,
    MutationScript, SplitMix64, StrategyClass,
};
pub use graphs::{chain_edges, merged_sg_facts, random_dag_edges, tree_edges};
pub use joins::star_join_facts;
pub use lists::{ascending, descending, random_ints, random_list, sorted_ints};
