//! List generators for the sorting/append experiments (§2.2, §4).

use chainsplit_logic::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random integer list as a Rust vector.
pub fn random_ints(len: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..1000)).collect()
}

/// A seeded random integer list as a logic term.
pub fn random_list(len: usize, seed: u64) -> Term {
    Term::int_list(random_ints(len, seed))
}

/// Ascending `0..len` — isort's best case (every insert stops at once…
/// actually its worst, since insert walks the whole sorted prefix).
pub fn ascending(len: usize) -> Term {
    Term::int_list(0..len as i64)
}

/// Descending `len..0` — every insert lands at the head immediately.
pub fn descending(len: usize) -> Term {
    Term::int_list((0..len as i64).rev())
}

/// The sorted version, for checking answers.
pub fn sorted_ints(mut v: Vec<i64>) -> Vec<i64> {
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_ints(16, 3), random_ints(16, 3));
        assert_ne!(random_ints(16, 3), random_ints(16, 4));
    }

    #[test]
    fn shapes() {
        assert_eq!(ascending(3).to_string(), "[0, 1, 2]");
        assert_eq!(descending(3).to_string(), "[2, 1, 0]");
        assert_eq!(random_list(0, 1), Term::Nil);
    }

    #[test]
    fn sorted_helper() {
        assert_eq!(sorted_ints(vec![5, 7, 1]), vec![1, 5, 7]);
    }
}
