//! Algorithm 3.3 in action: itinerary search with a fare budget.
//!
//! The paper's §3.3 `travel` example: find all itineraries from the first
//! to the last airport whose total fare stays under budget. The constraint
//! `F <= budget` is *pushed into the chain*: partial fare sums prune
//! hopeless routes during the up sweep instead of after full enumeration.
//!
//! ```sh
//! cargo run --example flight_planner
//! ```

use chain_split::core::{eval_partial, push_constraints, SolveOptions, Solver, System};
use chain_split::logic::{parse_program, parse_query, Program, Subst};
use chain_split::workloads::{endpoints, fixtures, flight_facts, FlightConfig};

fn main() {
    let cfg = FlightConfig {
        airports: 12,
        extra_flights: 14,
        fare_min: 100,
        fare_max: 400,
        seed: 11,
    };
    let mut program: Program = parse_program(fixtures::TRAVEL).unwrap();
    for f in flight_facts(cfg) {
        program.rules.push(chain_split::logic::Rule::fact(f));
    }
    let sys = System::build(&program);
    let (origin, destination) = endpoints(cfg);
    let budget = 1500;

    let query = parse_query(&format!("travel(L, {origin}, DT, {destination}, AT, F)")).unwrap();
    let constraint = parse_query(&format!("F <= {budget}")).unwrap();

    // What does the analysis push?
    let pushed = push_constraints(&sys, &query, std::slice::from_ref(&constraint));
    println!("== constraint analysis ==");
    println!("  constraint: F <= {budget}");
    println!("  pushed guards: {}", pushed.guards.len());
    for g in &pushed.guards {
        println!(
            "    monotone sum over addend `{}`, limit {}, {}",
            g.addend,
            g.limit,
            if g.strict { "strict" } else { "inclusive" }
        );
    }

    // Run with pushing.
    let mut pruned = Solver::new(&sys, SolveOptions::default());
    let answers = eval_partial(&mut pruned, &query, std::slice::from_ref(&constraint)).unwrap();
    println!("\n== itineraries {origin} -> {destination} with fare <= {budget} ==");
    let mut rows: Vec<String> = answers
        .iter()
        .map(|s| s.resolve_atom(&query).to_string())
        .collect();
    rows.sort();
    for r in &rows {
        println!("  {r}");
    }

    // Same query, no pushing: enumerate everything, filter at the end.
    let mut unpruned = Solver::new(&sys, SolveOptions::default());
    let mut raw = Vec::new();
    unpruned
        .solve_atom(&query, &Subst::new(), 0, &mut raw)
        .unwrap();

    println!("\n== constraint pushing vs filter-at-the-end ==");
    println!(
        "  with pushing   : {:>6} buffered tuples, {:>8} join probes",
        pruned.counters.buffered_peak, pruned.counters.probed
    );
    println!(
        "  filter at end  : {:>6} buffered tuples, {:>8} join probes ({} raw routes)",
        unpruned.counters.buffered_peak,
        unpruned.counters.probed,
        raw.len()
    );
    assert!(pruned.counters.buffered_peak <= unpruned.counters.buffered_peak);
}
