//! The paper's §4 worked examples: nested linear (`isort`) and nonlinear
//! (`qsort`) recursions, evaluated by chain-split.
//!
//! ```sh
//! cargo run --example list_programs
//! ```

use chain_split::core::{DeductiveDb, Strategy};
use chain_split::logic::Term;
use chain_split::workloads::{fixtures, random_ints, sorted_ints};

fn main() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::ISORT).unwrap();
    db.load(fixtures::QSORT).unwrap();

    // The paper's Example 4.1: ?- isort([5,7,1], Ys).
    println!("== isort([5,7,1], Ys)  (paper Example 4.1) ==");
    for a in db.query("isort([5, 7, 1], Ys)").unwrap() {
        println!("  {a}");
    }
    print!("{}", db.explain("isort([5, 7, 1], Ys)").unwrap());

    // insert^bbf is the inner chain-split: Y is buffered (§4.1).
    println!("\n== the inner recursion: insert(5, [1, 7], Zs) ==");
    for a in db.query("insert(5, [1, 7], Zs)").unwrap() {
        println!("  {a}");
    }
    print!("{}", db.explain("insert(5, [1, 7], Zs)").unwrap());

    // The paper's Example 4.2: ?- qsort([4,9,5], Ys).
    println!("\n== qsort([4,9,5], Ys)  (paper Example 4.2) ==");
    for a in db.query("qsort([4, 9, 5], Ys)").unwrap() {
        println!("  {a}");
    }

    // Bigger lists: chain-split vs Prolog-style top-down, same answers.
    let data = random_ints(64, 7);
    let list = Term::int_list(data.clone());
    let expected = Term::int_list(sorted_ints(data));
    println!("\n== sorting 64 random elements ==");
    for strategy in [Strategy::Auto, Strategy::TopDown] {
        let outcome = db
            .query_with(&format!("isort({list}, Ys)"), strategy)
            .unwrap();
        assert_eq!(outcome.answers.len(), 1);
        assert_eq!(
            outcome.answers[0].to_string(),
            format!("Ys = {expected}"),
            "strategy {strategy} must sort correctly"
        );
        println!(
            "  isort/{:<9} ok: {} derivations, {} probes",
            strategy.to_string(),
            outcome.counters.derived,
            outcome.counters.probed
        );
    }
    for strategy in [Strategy::Auto, Strategy::TopDown] {
        let outcome = db
            .query_with(&format!("qsort({list}, Ys)"), strategy)
            .unwrap();
        assert_eq!(outcome.answers[0].to_string(), format!("Ys = {expected}"));
        println!(
            "  qsort/{:<9} ok: {} derivations, {} probes",
            strategy.to_string(),
            outcome.counters.derived,
            outcome.counters.probed
        );
    }

    println!("\nall strategies agree; chain-split evaluated the nested and");
    println!("nonlinear recursions without leaving the set-oriented engine.");
}
