//! N-queens — the stress test the LogicBase prototype reports running
//! ("successfully tested on many interesting recursions, such as append,
//! travel, isort, nqueens, etc." \[7\]).
//!
//! The program mixes every recursion class the engine supports: `range` and
//! `select` are linear functional recursions (evaluated by buffered
//! chain-split), `perm` is a linear recursion over `select`, and `safe` /
//! `no_attack` are linear recursions full of arithmetic builtins.
//!
//! ```sh
//! cargo run --release --example nqueens
//! ```

use chain_split::core::{DeductiveDb, Strategy};

const QUEENS: &str = "
queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).

range(H, H, [H]).
range(L, H, [L | T]) :- L < H, plus(L, 1, L1), range(L1, H, T).

perm([], []).
perm(Xs, [X | Ys]) :- select(X, Xs, Rest), perm(Rest, Ys).

select(X, [X | Xs], Xs).
select(X, [Y | Ys], [Y | Zs]) :- select(X, Ys, Zs).

safe([]).
safe([Q | Qs]) :- no_attack(Q, Qs, 1), safe(Qs).

no_attack(Q, [], D).
no_attack(Q, [Q1 | Qs], D) :- Q \\= Q1, minus(Q, Q1, Diff), abs(Diff, AD),
    AD \\= D, plus(D, 1, D1), no_attack(Q, Qs, D1).
";

fn main() {
    let mut db = DeductiveDb::new();
    db.load(QUEENS).expect("program parses");

    println!("== compilation report ==");
    print!("{}", db.explain("queens(6, Qs)").unwrap());
    println!();

    for n in [4i64, 5, 6] {
        let outcome = db
            .query_with(&format!("queens({n}, Qs)"), Strategy::Auto)
            .expect("queens evaluates");
        println!(
            "queens({n}): {} solutions ({} derivations, {} probes)",
            outcome.answers.len(),
            outcome.counters.derived,
            outcome.counters.probed
        );
        if n == 6 {
            for a in &outcome.answers {
                println!("  {a}");
            }
            assert_eq!(outcome.answers.len(), 4, "6-queens has 4 solutions");
        }
    }

    // Existence checking (§5): is there any solution at all? Stops at the
    // first one instead of enumerating the whole solution set.
    let exists7 = db.exists("queens(7, Qs)").unwrap();
    println!("\nqueens(7) solvable? {exists7}");
    assert!(exists7);
}
