//! Quickstart: load a program, ask queries, inspect the plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chain_split::core::{DeductiveDb, Strategy};

fn main() {
    let mut db = DeductiveDb::new();

    // The paper's same-generation recursion (Example 1.1) over a small
    // family tree.
    db.load(
        "% EDB ------------------------------------------------------------
         parent(charles, elizabeth). parent(anne, elizabeth).
         parent(william, charles).   parent(peter, anne).
         parent(george, william).    parent(savannah, peter).
         sibling(charles, anne).     sibling(anne, charles).

         % IDB ------------------------------------------------------------
         sg(X, Y) :- sibling(X, Y).
         sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
    )
    .expect("program parses");

    println!("== who is of george's generation? ==");
    for answer in db.query("sg(george, Y)").expect("query evaluates") {
        println!("  {answer}");
    }

    println!("\n== how was that evaluated? ==");
    print!("{}", db.explain("sg(george, Y)").unwrap());

    // Functional recursions work out of the box: append backwards needs
    // chain-split evaluation (the paper's §2.2).
    db.load(
        "append([], L, L).
         append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
    )
    .unwrap();

    println!("\n== all splits of [1,2,3] ==");
    for answer in db.query("append(U, V, [1, 2, 3])").unwrap() {
        println!("  {answer}");
    }

    println!("\n== the chain-split plan behind it ==");
    print!("{}", db.explain("append(U, V, [1, 2, 3])").unwrap());

    // Compare evaluation methods on the same query.
    println!("\n== method comparison on sg(george, Y) ==");
    for strategy in [
        Strategy::Auto,
        Strategy::TopDown,
        Strategy::SemiNaive,
        Strategy::Magic,
    ] {
        let outcome = db.query_with("sg(george, Y)", strategy).unwrap();
        println!(
            "  {:<18} {} answer(s), {} facts derived, {} join probes",
            strategy.to_string(),
            outcome.answers.len(),
            outcome.counters.derived,
            outcome.counters.probed,
        );
    }
}
