//! Algorithm 3.1 in action: efficiency-based chain-split magic sets.
//!
//! The paper's Example 1.2 (`scsg`, same-country same-generation): the
//! `same_country` predicate links the two `parent` atoms into a single
//! chain generating path. Standard magic sets push the query binding
//! *through* `same_country`, deriving magic sets that fan out to every
//! compatriot at every generation. The cost model spots the weak linkage
//! from the EDB's join expansion ratio and splits the chain instead.
//!
//! ```sh
//! cargo run --example scsg_analysis
//! ```

use chain_split::core::efficiency::standard_magic;
use chain_split::core::{chain_split_magic, CostModel, System};
use chain_split::engine::BottomUpOptions;
use chain_split::logic::{parse_program, parse_query, Pred, Program, Rule};
use chain_split::relation::Stats;
use chain_split::workloads::{family_facts, fixtures, query_person, FamilyConfig};

fn main() {
    let cfg = FamilyConfig {
        countries: 2,
        people_per_country: 24,
        generations: 4,
    };
    let mut program: Program = parse_program(fixtures::SCSG).unwrap();
    for f in family_facts(cfg) {
        program.rules.push(Rule::fact(f));
    }
    let sys = System::build(&program);

    // The quantitative measurements of §2.1.
    let stats = Stats::new(&sys.edb);
    let sc = Pred::new("same_country", 2);
    let parent = Pred::new("parent", 2);
    println!("== EDB statistics ==");
    println!(
        "  same_country: {} tuples, expansion ratio {:.1}",
        stats.cardinality(sc),
        stats.expansion(sc, &[0])
    );
    println!(
        "  parent      : {} tuples, expansion ratio {:.1}",
        stats.cardinality(parent),
        stats.expansion(parent, &[0])
    );

    let model = CostModel::default();
    let query = parse_query(&format!("scsg({}, Y)", query_person(cfg))).unwrap();
    let weak = model.weak_linkages(&sys, &query);
    println!(
        "\n== cost model decision (thresholds: split > {}, follow < {}) ==",
        model.split_threshold, model.follow_threshold
    );
    for p in &weak {
        println!("  weak linkage, binding will NOT propagate through: {p}");
    }

    // Standard magic vs chain-split magic on the same query.
    let std = standard_magic(&sys, &query, BottomUpOptions::default()).unwrap();
    let split = chain_split_magic(&sys, &query, &model, BottomUpOptions::default()).unwrap();

    println!("\n== standard magic sets (blind binding passing) ==");
    println!(
        "  answers {:>4}   magic facts {:>8}   derived {:>8}   probes {:>10}",
        std.answers.len(),
        std.counters.magic_facts,
        std.counters.derived,
        std.counters.probed
    );
    println!("== chain-split magic sets (Algorithm 3.1) ==");
    println!(
        "  answers {:>4}   magic facts {:>8}   derived {:>8}   probes {:>10}",
        split.answers.len(),
        split.counters.magic_facts,
        split.counters.derived,
        split.counters.probed
    );

    assert_eq!(std.answers.len(), split.answers.len());
    let factor = std.counters.magic_facts as f64 / split.counters.magic_facts.max(1) as f64;
    println!("\nchain-split magic derives {factor:.1}x fewer magic facts on this workload.");
}
