//! Measures WAL-on mutation overhead (EXPERIMENTS.md, "Durability").
//!
//! Times three mutation-heavy sessions over the same workload — N fact
//! asserts into a 2-predicate EDB, then a transitive-closure query:
//!
//!  1. in-memory (`DeductiveDb::new`) — the baseline a WAL-less build
//!     pays,
//!  2. durable (`DeductiveDb::open`) with an fsync per append — the
//!     default crash-safe configuration,
//!  3. durable, then `:snapshot` + a restart (`open` again) — the
//!     recovery path itself.
//!
//! ```sh
//! cargo run --release --example wal_overhead [N]
//! ```

use chain_split::core::db::DeductiveDb;
use chain_split::logic::parse_query;
use std::time::Instant;

fn assert_facts(db: &mut DeductiveDb, n: usize) {
    for i in 0..n {
        let fact = format!("edge(n{i}, n{})", (i + 1) % n);
        db.add_fact(parse_query(&fact).unwrap()).unwrap();
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let rules = "tc(X, Y) :- edge(X, Y).\ntc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

    // Leg 1: in-memory.
    let t0 = Instant::now();
    let mut mem = DeductiveDb::new();
    mem.load(rules).unwrap();
    assert_facts(&mut mem, n);
    let mem_elapsed = t0.elapsed();

    // Leg 2: durable, one fsynced WAL frame per mutation.
    let dir = std::path::Path::new("target")
        .join("chainsplit-recovery")
        .join(format!("wal-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t1 = Instant::now();
    let mut dur = DeductiveDb::open(&dir).unwrap();
    dur.load(rules).unwrap();
    assert_facts(&mut dur, n);
    let dur_elapsed = t1.elapsed();
    let status = dur.store_status().expect("durable db has a store");

    // Leg 3: snapshot, then recover from disk.
    let t2 = Instant::now();
    dur.snapshot().unwrap();
    let snap_elapsed = t2.elapsed();
    drop(dur);
    let t3 = Instant::now();
    let recovered = DeductiveDb::open(&dir).unwrap();
    let open_elapsed = t3.elapsed();
    let report = recovered.recovery_report().unwrap().clone();

    println!("facts asserted:      {n}");
    println!(
        "in-memory:           {:.1} ms ({:.1} µs/op)",
        mem_elapsed.as_secs_f64() * 1e3,
        mem_elapsed.as_secs_f64() * 1e6 / (n + 1) as f64
    );
    println!(
        "wal on (fsync/op):   {:.1} ms ({:.1} µs/op, {:.1}x)",
        dur_elapsed.as_secs_f64() * 1e3,
        dur_elapsed.as_secs_f64() * 1e6 / (n + 1) as f64,
        dur_elapsed.as_secs_f64() / mem_elapsed.as_secs_f64()
    );
    println!(
        "wal size:            {} byte(s) in {} segment(s)",
        status.wal_bytes, status.segments
    );
    println!(
        "snapshot:            {:.1} ms",
        snap_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "recover (snapshot):  {:.1} ms ({} op(s) durable, {} replayed)",
        open_elapsed.as_secs_f64() * 1e3,
        report.ops_durable,
        report.replayed_records
    );
    let _ = std::fs::remove_dir_all(&dir);
}
