#!/usr/bin/env bash
# The DESIGN-mandated final verification runs.
set -uo pipefail
cd "$(dirname "$0")/.."
cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
