#!/usr/bin/env bash
# Regenerates every experiment table into results/ (see EXPERIMENTS.md).
#
# Each table_eN prints its markdown table on stdout (tee'd to
# results/table_eN.txt) and writes machine-readable results/BENCH_eN.json
# as a side effect. Building first keeps cargo's progress chatter out of
# the tee'd tables, and `pipefail` makes a failing binary fail the script
# even though tee is the last command in the pipe.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

# Scratch data dirs left behind by interrupted recovery-oracle runs
# (fuzz --crash, tests/recovery_replay.rs) would otherwise accumulate
# under target/ between benchmark sessions.
rm -rf target/chainsplit-recovery

echo "=== build (release) ==="
cargo build -p chainsplit-bench --release --bins

for n in 1 2 3 4 5 6 7 8 9; do
    echo "=== table_e$n ==="
    "target/release/table_e$n" | tee "results/table_e$n.txt"
done

echo "=== machine-readable results ==="
ls -l results/BENCH_e*.json
