#!/usr/bin/env bash
# Regenerates every experiment table into results/ (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for n in 1 2 3 4 5 6 7; do
    echo "=== table_e$n ==="
    cargo run -p chainsplit-bench --release --bin "table_e$n" | tee "results/table_e$n.txt"
done
