//! Deterministic differential fuzzer driver.
//!
//! Runs consecutive seeds through the oracle in
//! [`chain_split::differential`]: every applicable strategy at every
//! requested thread count must produce identical sorted answers and,
//! per strategy, bit-identical work counters across thread counts.
//! On a failure the case is shrunk by halving its EDB and printed in
//! corpus format (suitable for `tests/corpus/`), then the process exits
//! non-zero.
//!
//! ```text
//! fuzz [--start S] [--seeds N] [--threads 1,4]
//! ```

use chain_split::differential::run_seeds;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: fuzz [--start S] [--seeds N] [--threads 1,4]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut start: u64 = 0;
    let mut seeds: u64 = 25;
    let mut threads: Vec<usize> = vec![1, 4];

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--start" => start = value().parse().unwrap_or_else(|_| usage()),
            "--seeds" => seeds = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                threads = value()
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if threads.is_empty() || threads.contains(&0) {
                    usage();
                }
            }
            _ => usage(),
        }
    }

    println!(
        "fuzz: seeds {start}..{} x threads {threads:?} x all applicable strategies",
        start + seeds
    );
    match run_seeds(start, seeds, &threads) {
        Ok(total_answers) => {
            println!("fuzz: OK — {seeds} seeds agreed ({total_answers} reference answers)");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            let (shrunk, mismatch) = *failure;
            eprintln!("fuzz: FAILED — {mismatch}");
            eprintln!(
                "fuzz: shrunk reproduction (re-run with --start {} --seeds 1):",
                mismatch.seed
            );
            eprintln!("{shrunk}");
            ExitCode::FAILURE
        }
    }
}
