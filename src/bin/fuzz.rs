//! Deterministic differential fuzzer driver.
//!
//! Runs consecutive seeds through the oracle in
//! [`chain_split::differential`]: every applicable strategy at every
//! requested thread count must produce identical sorted answers and,
//! per strategy, bit-identical work counters across thread counts.
//! On a failure the case is shrunk by halving its EDB and printed in
//! corpus format (suitable for `tests/corpus/`), then the process exits
//! non-zero.
//!
//! With `--fault-rate` and/or `--timeout-ms` the driver switches to the
//! **crash-consistency oracle**: each seed's query is disrupted (injected
//! faults from a seeded stream, a wall-clock deadline) and the same
//! database handle must then re-run the query to the correct,
//! bit-identical outcome once the disruption is lifted. Fault rates
//! above zero need a `--features fault-inject` build.
//!
//! With `--cache` the driver switches to the **cache-consistency
//! oracle**: each seed runs a mutation-interleaved query session on two
//! databases in lockstep — one with the answer cache enabled — and the
//! cached database must report the same answers and trips at every step
//! while hitting (and invalidating) exactly when the epochs say it must.
//!
//! With `--provenance` the driver switches to the **lineage oracle**:
//! each seed's query runs with witness recording on, every recorded
//! witness must ground-instantiate its rule with all body atoms
//! themselves derivable, and the witness snapshot must be bit-identical
//! at every thread count (DESIGN.md §12).
//!
//! With `--mutate` the driver switches to the **retraction-consistency
//! oracle**: each seed replays a scripted insert/retract/query session on
//! a live database (answer cache on, materialization repaired by
//! incremental DRed) in lockstep against a twin rebuilt from scratch
//! after every mutation, and the whole session log must be bit-identical
//! at every thread count (DESIGN.md §13). Failing scripts shrink over the
//! op sequence first, then the EDB.
//!
//! With `--plan` the driver switches to the **planner oracle**: each
//! seed's query runs planner-on and planner-off under every applicable
//! strategy, the two legs must report identical sorted answer sets
//! (counters legitimately differ — reordering joins is the point), and
//! each leg must be bit-identical across thread counts (DESIGN.md §14).
//!
//! With `--crash` the driver switches to the **recovery oracle**: each
//! seed runs a durable mutation session (WAL + a mid-script snapshot)
//! that is killed at a seed-chosen persistence point — mid-frame,
//! between write and fsync, either side of a snapshot rename — and the
//! recovered database must be indistinguishable from an in-memory twin
//! that applied exactly the durable operations (DESIGN.md §15). Fault
//! injection at persistence points needs a `--features fault-inject`
//! build; without it the oracle runs its clean-kill leg.
//!
//! ```text
//! fuzz [--start S] [--seeds N] [--threads 1,4] [--cache] [--provenance]
//!      [--mutate] [--plan] [--crash] [--fault-rate P] [--fault-seed S]
//!      [--timeout-ms MS]
//! ```

use chain_split::differential::{
    run_seeds, run_seeds_cached, run_seeds_crash, run_seeds_disrupted, run_seeds_mutate,
    run_seeds_plan, run_seeds_provenance, Disruption,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--start S] [--seeds N] [--threads 1,4] [--cache] [--provenance] \
         [--mutate] [--plan] [--crash] [--fault-rate P] [--fault-seed S] [--timeout-ms MS]"
    );
    std::process::exit(2);
}

/// The `--threads` list back in flag form, so every repro header prints
/// a complete re-run recipe.
fn threads_flag(threads: &[usize]) -> String {
    let list: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    format!("--threads {}", list.join(","))
}

fn main() -> ExitCode {
    let mut start: u64 = 0;
    let mut seeds: u64 = 25;
    let mut threads: Vec<usize> = vec![1, 4];
    let mut fault_rate: f64 = 0.0;
    let mut fault_seed: u64 = 0xC0FFEE;
    let mut timeout_ms: Option<u64> = None;
    let mut cache: bool = false;
    let mut provenance: bool = false;
    let mut mutate: bool = false;
    let mut plan: bool = false;
    let mut crash: bool = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--start" => start = value().parse().unwrap_or_else(|_| usage()),
            "--seeds" => seeds = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                threads = value()
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if threads.is_empty() || threads.contains(&0) {
                    usage();
                }
            }
            "--fault-rate" => {
                fault_rate = value().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&fault_rate) {
                    usage();
                }
            }
            "--fault-seed" => fault_seed = value().parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => timeout_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--cache" => cache = true,
            "--provenance" => provenance = true,
            "--mutate" => mutate = true,
            "--plan" => plan = true,
            "--crash" => crash = true,
            _ => usage(),
        }
    }

    if crash {
        if cache || provenance || mutate || plan || fault_rate > 0.0 || timeout_ms.is_some() {
            eprintln!(
                "fuzz: --crash does not combine with --cache/--provenance/--mutate/\
                 --plan/--fault-rate/--timeout-ms"
            );
            return ExitCode::from(2);
        }
        println!(
            "fuzz: recovery oracle, seeds {start}..{} x threads {threads:?}, durable \
             sessions killed at seed-chosen persistence points ({})",
            start + seeds,
            if cfg!(feature = "fault-inject") {
                "torn/short/corrupt/duplicate/rename faults"
            } else {
                "clean-kill leg only; build with --features fault-inject for torn writes"
            }
        );
        return match run_seeds_crash(start, seeds, &threads) {
            Ok(checked) => {
                println!("fuzz: OK — {checked} killed sessions recovered bit-identically");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (shrunk, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                eprintln!(
                    "fuzz: shrunk reproduction from seed {} (re-run with \
                     --crash --start {} --seeds 1 {}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{shrunk}");
                ExitCode::FAILURE
            }
        };
    }

    if plan {
        if cache || provenance || mutate || fault_rate > 0.0 || timeout_ms.is_some() {
            eprintln!(
                "fuzz: --plan does not combine with --cache/--provenance/--mutate/\
                 --fault-rate/--timeout-ms"
            );
            return ExitCode::from(2);
        }
        println!(
            "fuzz: planner oracle, seeds {start}..{} x threads {threads:?} \
             x planner on/off x all applicable strategies",
            start + seeds
        );
        return match run_seeds_plan(start, seeds, &threads) {
            Ok(checked) => {
                println!("fuzz: OK — {checked} seeds agreed planner-on vs planner-off");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (case, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                eprintln!(
                    "fuzz: reproduction from seed {} (re-run with --plan --start {} \
                     --seeds 1 {}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{case}");
                ExitCode::FAILURE
            }
        };
    }

    if mutate {
        if cache || provenance || fault_rate > 0.0 || timeout_ms.is_some() {
            eprintln!(
                "fuzz: --mutate does not combine with --cache/--provenance/\
                 --fault-rate/--timeout-ms"
            );
            return ExitCode::from(2);
        }
        println!(
            "fuzz: retraction-consistency, seeds {start}..{} x threads {threads:?} \
             vs recompute-from-scratch twins",
            start + seeds
        );
        return match run_seeds_mutate(start, seeds, &threads) {
            Ok(total_ops) => {
                println!(
                    "fuzz: OK — {seeds} mutation sessions matched their rebuilt \
                     twins ({total_ops} ops replayed)"
                );
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (shrunk, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                eprintln!(
                    "fuzz: shrunk reproduction from seed {} (re-run with --mutate \
                     --start {} --seeds 1 {}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{shrunk}");
                ExitCode::FAILURE
            }
        };
    }

    if provenance {
        if cache || fault_rate > 0.0 || timeout_ms.is_some() {
            eprintln!("fuzz: --provenance does not combine with --cache/--fault-rate/--timeout-ms");
            return ExitCode::from(2);
        }
        println!(
            "fuzz: lineage oracle, seeds {start}..{} x threads {threads:?} \
             x all applicable strategies",
            start + seeds
        );
        return match run_seeds_provenance(start, seeds, &threads) {
            Ok(checked) => {
                println!("fuzz: OK — {checked} seeds recorded valid, thread-identical witnesses");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (case, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                eprintln!(
                    "fuzz: reproduction from seed {} (re-run with --provenance \
                     --start {} --seeds 1 {}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{case}");
                ExitCode::FAILURE
            }
        };
    }

    if cache {
        if fault_rate > 0.0 || timeout_ms.is_some() {
            eprintln!("fuzz: --cache does not combine with --fault-rate/--timeout-ms");
            return ExitCode::from(2);
        }
        println!(
            "fuzz: cache-consistency, seeds {start}..{} x threads {threads:?} \
             x all applicable strategies",
            start + seeds
        );
        return match run_seeds_cached(start, seeds, &threads) {
            Ok(checked) => {
                println!(
                    "fuzz: OK — {checked} mutation-interleaved seeds agreed cache-on vs cache-off"
                );
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (case, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                eprintln!(
                    "fuzz: reproduction from seed {} (re-run with --cache --start {} \
                     --seeds 1 {}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{case}");
                ExitCode::FAILURE
            }
        };
    }

    let disruption = Disruption {
        fault_rate_ppm: (fault_rate * 1_000_000.0) as u32,
        fault_seed,
        timeout_ms,
    };
    if disruption.fault_rate_ppm > 0 && !cfg!(feature = "fault-inject") {
        eprintln!("fuzz: --fault-rate > 0 needs a `--features fault-inject` build");
        return ExitCode::from(2);
    }
    if disruption.fault_rate_ppm > 0 || disruption.timeout_ms.is_some() {
        println!(
            "fuzz: crash-consistency, seeds {start}..{} x threads {threads:?} \
             (fault rate {} ppm, seed {fault_seed}, timeout {timeout_ms:?})",
            start + seeds,
            disruption.fault_rate_ppm
        );
        return match run_seeds_disrupted(start, seeds, &threads, &disruption) {
            Ok(checked) => {
                println!("fuzz: OK — {checked} disrupted seeds recovered bit-identically");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                let (case, mismatch) = *failure;
                eprintln!("fuzz: FAILED — {mismatch}");
                let timeout = timeout_ms
                    .map(|ms| format!(" --timeout-ms {ms}"))
                    .unwrap_or_default();
                eprintln!(
                    "fuzz: reproduction from seed {} (re-run with --start {} --seeds 1 \
                     {} --fault-rate {fault_rate} --fault-seed {fault_seed}{timeout}):",
                    mismatch.seed,
                    mismatch.seed,
                    threads_flag(&threads)
                );
                eprintln!("{case}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fuzz: seeds {start}..{} x threads {threads:?} x all applicable strategies",
        start + seeds
    );
    match run_seeds(start, seeds, &threads) {
        Ok(total_answers) => {
            println!("fuzz: OK — {seeds} seeds agreed ({total_answers} reference answers)");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            let (shrunk, mismatch) = *failure;
            eprintln!("fuzz: FAILED — {mismatch}");
            eprintln!(
                "fuzz: shrunk reproduction from seed {} (re-run with --start {} \
                 --seeds 1 {}):",
                mismatch.seed,
                mismatch.seed,
                threads_flag(&threads)
            );
            eprintln!("{shrunk}");
            ExitCode::FAILURE
        }
    }
}
