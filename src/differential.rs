//! The differential-fuzzing oracle: every applicable strategy, at every
//! thread count, must tell the same story.
//!
//! For a generated [`FuzzCase`] the harness runs the query under each
//! applicable strategy at each requested thread count and checks two
//! invariants:
//!
//! 1. **Strategy agreement** — the sorted answer sets of all strategies
//!    are identical (the classical differential oracle);
//! 2. **Thread determinism** — for a fixed strategy, the outcome at every
//!    thread count is *bit-identical*: the same sorted answers, the same
//!    exact work counters (`probed`, `matched`, `derived`, …), or the
//!    same error. This is the determinism contract of the parallel
//!    fixpoint (DESIGN.md §5) stated as an executable property;
//! 3. **Executor equivalence** — re-running each strategy through the
//!    legacy per-substitution join loop (the seam in
//!    `chainsplit_engine::eval::legacy`) yields the same sorted answers
//!    and the same kind of outcome as the frontier-at-a-time executor.
//!    Work counters are deliberately *not* compared: probe memoization
//!    changes what `probed` and the access-path counters measure
//!    (DESIGN.md §6).
//!
//! A failing case shrinks by repeatedly halving its EDB while the failure
//! reproduces ([`shrink_case`]), and prints as a corpus-format program
//! with its seed — a complete reproduction recipe.

use crate::core::{DbError, DeductiveDb, Strategy};
use crate::engine::{Counters, EvalError};
use crate::workloads::fuzz::{FuzzCase, MutOp, MutationScript, StrategyClass};
use std::fmt;

/// All strategies: applies to function-free, acyclic cases.
pub const ALL_STRATEGIES: [Strategy; 8] = [
    Strategy::Auto,
    Strategy::TopDown,
    Strategy::Naive,
    Strategy::SemiNaive,
    Strategy::Magic,
    Strategy::SupplementaryMagic,
    Strategy::ChainSplitMagic,
    Strategy::Tabled,
];

/// Strategies applicable to functional recursions (whose exit rules
/// denote infinite relations, so the set-oriented family cannot run).
pub const GOAL_DIRECTED_STRATEGIES: [Strategy; 2] = [Strategy::Auto, Strategy::TopDown];

/// Strategies applicable to cyclic EDBs: the set-oriented family (whose
/// fixpoints terminate on cycles) plus auto (whose chain-split planner
/// budget-stops gracefully). Plain SLD recursion would diverge.
pub const BOTTOM_UP_STRATEGIES: [Strategy; 7] = [
    Strategy::Auto,
    Strategy::Naive,
    Strategy::SemiNaive,
    Strategy::Magic,
    Strategy::SupplementaryMagic,
    Strategy::ChainSplitMagic,
    Strategy::Tabled,
];

/// The strategies a case runs under.
pub fn strategies_for(case: &FuzzCase) -> &'static [Strategy] {
    match case.class {
        StrategyClass::All => &ALL_STRATEGIES,
        StrategyClass::GoalDirected => &GOAL_DIRECTED_STRATEGIES,
        StrategyClass::BottomUp => &BOTTOM_UP_STRATEGIES,
    }
}

/// One (strategy, threads) outcome, normalized for comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    Ok {
        answers: Vec<String>,
        counters: Counters,
    },
    /// The strategy ran out of depth or fuel budget. Goal-directed SLD
    /// legitimately diverges on cyclic recursions (no tabling), so a
    /// budget stop is "strategy inapplicable here", not a disagreement —
    /// but it must still be thread-deterministic.
    Budget(String),
    Err(String),
}

fn run_one(case: &FuzzCase, strategy: Strategy, threads: usize) -> Outcome {
    run_one_planned(case, strategy, threads, true)
}

fn run_one_planned(case: &FuzzCase, strategy: Strategy, threads: usize, plan: bool) -> Outcome {
    let mut db = DeductiveDb::new();
    if let Err(e) = db.load(&case.program()) {
        return Outcome::Err(format!("load: {e}"));
    }
    db.set_threads(threads);
    db.set_plan_enabled(plan);
    // Cyclic EDBs make the counting-based chain-split planner diverge; it
    // budget-stops on `max_levels`. The production guard (100k levels) is
    // needlessly slow for an oracle that only checks the stop itself is
    // deterministic, so use a budget still far above any generated case's
    // real chain depth.
    db.solve_options.max_levels = 200;
    match db.query_with(&case.query, strategy) {
        // A governor trip degrades gracefully into a partial result; for
        // the oracle that is a budget stop, not an answer set (partial
        // sets legitimately differ between strategies).
        Ok(outcome) if outcome.trip.is_some() => {
            Outcome::Budget(outcome.trip.expect("matched Some").to_string())
        }
        Ok(outcome) => {
            let mut answers: Vec<String> = outcome.answers.iter().map(|a| a.to_string()).collect();
            answers.sort();
            Outcome::Ok {
                answers,
                counters: outcome.counters,
            }
        }
        Err(DbError::Eval(
            e @ (EvalError::DepthExceeded { .. }
            | EvalError::FuelExceeded { .. }
            | EvalError::BudgetExceeded { .. }),
        )) => Outcome::Budget(e.to_string()),
        Err(e) => Outcome::Err(e.to_string()),
    }
}

/// A verified disagreement, with everything needed to reproduce it.
#[derive(Debug)]
pub struct Mismatch {
    pub seed: u64,
    pub shape: &'static str,
    pub detail: String,
}

impl Outcome {
    /// This outcome with its counters zeroed — the comparison shape for
    /// cross-executor checks, where counter semantics legitimately differ.
    fn without_counters(&self) -> Outcome {
        match self {
            Outcome::Ok { answers, .. } => Outcome::Ok {
                answers: answers.clone(),
                counters: Counters::default(),
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {} ({}): {}", self.seed, self.shape, self.detail)
    }
}

/// Checks both oracle invariants on `case`. `threads` must be non-empty;
/// its first entry provides the reference outcome. On success returns the
/// number of reference answers.
pub fn check_case(case: &FuzzCase, threads: &[usize]) -> Result<usize, Mismatch> {
    assert!(!threads.is_empty(), "need at least one thread count");
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let mut reference: Option<(Strategy, Vec<String>)> = None;
    for &strategy in strategies_for(case) {
        let base = run_one(case, strategy, threads[0]);
        // Invariant 2: bit-identical outcomes across thread counts —
        // answers, exact counters, or the exact error.
        for &t in &threads[1..] {
            let other = run_one(case, strategy, t);
            if other != base {
                return Err(fail(format!(
                    "{strategy} differs between threads={} and threads={t}:\n  {:?}\nvs\n  {:?}",
                    threads[0], base, other
                )));
            }
        }
        // Invariant 3: executor equivalence. The legacy seam is
        // thread-local, so pin threads = 1 (the pool's inline path) to
        // keep the whole run on the flagged thread; answers are
        // thread-invariant (invariant 2), so comparing against `base` is
        // sound whatever threads[0] is.
        let legacy =
            crate::engine::eval::legacy::with_per_substitution(|| run_one(case, strategy, 1));
        if legacy.without_counters() != base.without_counters() {
            return Err(fail(format!(
                "{strategy} differs between the frontier and legacy executors:\n  {:?}\nvs\n  {:?}",
                base, legacy
            )));
        }
        // Invariant 1: all strategies agree on the answer set.
        match base {
            Outcome::Ok { answers, .. } => match &reference {
                None => reference = Some((strategy, answers)),
                Some((ref_strategy, ref_answers)) => {
                    if &answers != ref_answers {
                        return Err(fail(format!(
                            "{strategy} disagrees with {ref_strategy}: {} vs {} answers\n{:?}\nvs\n{:?}",
                            answers.len(),
                            ref_answers.len(),
                            answers,
                            ref_answers
                        )));
                    }
                }
            },
            Outcome::Budget(_) => {}
            Outcome::Err(e) => {
                return Err(fail(format!("{strategy} failed: {e}")));
            }
        }
    }
    Ok(reference.map_or(0, |(_, a)| a.len()))
}

/// The **planner invariant** (DESIGN.md §14): the cost-based join
/// planner is pure strategy. For every applicable strategy the
/// planner-on and planner-off runs must report identical sorted answer
/// sets (work counters legitimately differ — reordering the joins is
/// the whole point), and each leg individually must be bit-identical
/// (answers *and* counters) at every thread count.
pub fn check_plan_consistency(case: &FuzzCase, threads: &[usize]) -> Result<(), Mismatch> {
    assert!(!threads.is_empty(), "need at least one thread count");
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    for &strategy in strategies_for(case) {
        let mut legs: Vec<Outcome> = Vec::with_capacity(2);
        for plan in [true, false] {
            let base = run_one_planned(case, strategy, threads[0], plan);
            for &t in &threads[1..] {
                let other = run_one_planned(case, strategy, t, plan);
                if other != base {
                    return Err(fail(format!(
                        "{strategy} (plan={plan}) differs between threads={} and threads={t}:\n  \
                         {:?}\nvs\n  {:?}",
                        threads[0], base, other
                    )));
                }
            }
            legs.push(base);
        }
        // A budget stop is a partial result, and the two legs do
        // different amounts of work by design — only compare completed
        // answer sets.
        if let (Outcome::Ok { answers: on, .. }, Outcome::Ok { answers: off, .. }) =
            (&legs[0], &legs[1])
        {
            if on != off {
                return Err(fail(format!(
                    "{strategy} disagrees planner-on vs planner-off: {} vs {} answers\n{:?}\nvs\n{:?}",
                    on.len(),
                    off.len(),
                    on,
                    off
                )));
            }
        }
        if let Outcome::Err(e) = &legs[0] {
            return Err(fail(format!("{strategy} (plan=true) failed: {e}")));
        }
        if let Outcome::Err(e) = &legs[1] {
            return Err(fail(format!("{strategy} (plan=false) failed: {e}")));
        }
    }
    Ok(())
}

/// Runs `count` consecutive seeds through the planner oracle. Returns
/// the number of cases checked.
pub fn run_seeds_plan(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(FuzzCase, Mismatch)>> {
    for seed in start..start + count {
        let case = crate::workloads::fuzz::gen_case(seed);
        if let Err(m) = check_plan_consistency(&case, threads) {
            return Err(Box::new((case, m)));
        }
    }
    Ok(count)
}

/// Greedily shrinks a failing case by halving its EDB: keep any half on
/// which the failure still reproduces, stop when neither half fails.
pub fn shrink_case(case: &FuzzCase, threads: &[usize]) -> FuzzCase {
    let mut cur = case.clone();
    while cur.facts.len() > 1 {
        let half = cur.facts.len() / 2;
        let first = FuzzCase {
            facts: cur.facts[..half].to_vec(),
            ..cur.clone()
        };
        if check_case(&first, threads).is_err() {
            cur = first;
            continue;
        }
        let second = FuzzCase {
            facts: cur.facts[half..].to_vec(),
            ..cur.clone()
        };
        if check_case(&second, threads).is_err() {
            cur = second;
            continue;
        }
        break;
    }
    cur
}

/// Runs `count` consecutive seeds starting at `start`; on the first
/// failure returns the shrunk case and the mismatch (boxed: the payload
/// is cold and large relative to the hot `Ok` count).
pub fn run_seeds(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(FuzzCase, Mismatch)>> {
    let mut total_answers = 0u64;
    for seed in start..start + count {
        let case = crate::workloads::fuzz::gen_case(seed);
        match check_case(&case, threads) {
            Ok(n) => total_answers += n as u64,
            Err(_) => {
                let shrunk = shrink_case(&case, threads);
                let m = check_case(&shrunk, threads).expect_err("shrunk case must still fail");
                return Err(Box::new((shrunk, m)));
            }
        }
    }
    Ok(total_answers)
}

/// How to disrupt a query for the crash-consistency invariant: injected
/// faults (probe-time errors / forced cancellations / latency, from the
/// seeded stream in `chainsplit_governor::faults`), a wall-clock
/// deadline, or both.
#[derive(Clone, Copy, Debug, Default)]
pub struct Disruption {
    /// Per-injection-point fault probability in parts per million.
    /// Non-zero rates require the `fault-inject` feature.
    pub fault_rate_ppm: u32,
    /// Seed for the fault stream (reproduction recipe).
    pub fault_seed: u64,
    /// Wall-clock deadline applied to the disrupted run.
    pub timeout_ms: Option<u64>,
}

#[cfg(feature = "fault-inject")]
fn arm_disruption_faults(d: &Disruption) {
    if d.fault_rate_ppm > 0 {
        chainsplit_governor::faults::arm(chainsplit_governor::faults::FaultPlan::new(
            d.fault_seed,
            d.fault_rate_ppm,
        ));
    }
}

#[cfg(not(feature = "fault-inject"))]
fn arm_disruption_faults(d: &Disruption) {
    assert_eq!(
        d.fault_rate_ppm, 0,
        "fault injection requires building with `--features fault-inject`"
    );
}

fn disarm_disruption_faults() {
    #[cfg(feature = "fault-inject")]
    chainsplit_governor::faults::disarm();
}

/// The **crash-consistency invariant**: disrupting a query — injected
/// faults, a deadline, a mid-flight cancellation — must leave the
/// database able to re-run the *same* query on the *same* handle to the
/// correct, bit-identical outcome once the disruption is lifted.
///
/// For every applicable strategy at every thread count: run clean on a
/// fresh db (the reference), disrupt a second run on the same db and
/// ignore whatever it produces, lift the disruption, run a third time on
/// the same db, and require the third outcome to equal the reference
/// exactly (answers *and* counters).
///
/// Callers running with faults armed must serialize: the fault plan is
/// process-global.
pub fn check_crash_consistency(
    case: &FuzzCase,
    threads: &[usize],
    disruption: &Disruption,
) -> Result<(), Mismatch> {
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    for &t in threads {
        for &strategy in strategies_for(case) {
            let mut db = DeductiveDb::new();
            if let Err(e) = db.load(&case.program()) {
                return Err(fail(format!("load: {e}")));
            }
            db.set_threads(t);
            db.solve_options.max_levels = 200;
            let run = |db: &mut DeductiveDb| match db.query_with(&case.query, strategy) {
                Ok(outcome) if outcome.trip.is_some() => {
                    Outcome::Budget(outcome.trip.expect("matched Some").to_string())
                }
                Ok(outcome) => {
                    let mut answers: Vec<String> =
                        outcome.answers.iter().map(|a| a.to_string()).collect();
                    answers.sort();
                    Outcome::Ok {
                        answers,
                        counters: outcome.counters,
                    }
                }
                Err(e) => Outcome::Err(e.to_string()),
            };
            // Warm-up before the reference: the first query on a fresh db
            // lazily builds EDB indexes (`index_builds`), which later runs
            // hit (`index_hits`); with the cache warm, the reference and
            // the recovery run compare counter-exact.
            let _ = run(&mut db);
            let reference = run(&mut db);
            // Disrupt: deadline and/or injected faults. The disrupted
            // outcome is deliberately not inspected — it may be partial,
            // an error, or even complete (the disruption never fired).
            if let Some(ms) = disruption.timeout_ms {
                db.set_budget(crate::governor::Budget::with_wall_ms(ms));
            }
            arm_disruption_faults(disruption);
            let _ = run(&mut db);
            disarm_disruption_faults();
            db.set_budget(crate::governor::Budget::default());
            // Lifted: the same handle must produce the reference outcome.
            let after = run(&mut db);
            if after != reference {
                return Err(fail(format!(
                    "{strategy} at threads={t} is not crash-consistent \
                     (fault seed {}, rate {} ppm, timeout {:?}):\n  clean: {:?}\nvs after recovery: {:?}",
                    disruption.fault_seed, disruption.fault_rate_ppm, disruption.timeout_ms,
                    reference, after
                )));
            }
        }
    }
    Ok(())
}

/// One step of the cache-consistency script: an optional mutation
/// applied to both databases, the query re-posed, and whether the
/// cache-on side must answer from cache (given the previous pose
/// completed).
struct CacheStep {
    label: &'static str,
    add: Option<crate::logic::Atom>,
    rule: Option<&'static str>,
    expect_hit: bool,
}

/// The **cache-consistency invariant** (DESIGN.md §11): with the answer
/// cache enabled, every query in a mutation-interleaved session must
/// report exactly the answers and trips a cache-less database reports.
///
/// For every applicable strategy at every thread count, two databases
/// load the same case — one with the cache on — and run a scripted
/// session in lockstep: query, identical re-query (must *hit*), a fact
/// re-insert into a supporting predicate (must *invalidate*), a fact
/// insert into a fresh unrelated predicate (must *preserve* the hit), a
/// rule load (program epoch: must invalidate), and a final re-query.
/// After each step the two outcomes must agree on answers and trips
/// (counters are exempt: a hit legitimately reports zero new work).
pub fn check_cache_consistency(case: &FuzzCase, threads: &[usize]) -> Result<(), Mismatch> {
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let parse_atom = |src: &str| {
        crate::logic::parse_query(src.trim_end_matches('.'))
            .unwrap_or_else(|e| panic!("fact `{src}` must parse: {e}"))
    };
    let mut script = vec![
        CacheStep {
            label: "initial query",
            add: None,
            rule: None,
            expect_hit: false,
        },
        CacheStep {
            label: "identical re-query",
            add: None,
            rule: None,
            expect_hit: true,
        },
    ];
    if let Some(f) = case.facts.first() {
        // Re-inserting an existing fact keeps the answer set but bumps
        // the predicate's EDB epoch: targeted invalidation, exercised
        // without perturbing what the oracle compares.
        script.push(CacheStep {
            label: "re-insert into a supporting predicate",
            add: Some(parse_atom(f)),
            rule: None,
            expect_hit: false,
        });
    }
    script.push(CacheStep {
        label: "insert into an unrelated fresh predicate",
        add: Some(parse_atom("zzz_unrelated(c0)")),
        rule: None,
        expect_hit: true,
    });
    script.push(CacheStep {
        label: "rule load",
        add: None,
        rule: Some("zzz_new(X) :- zzz_unrelated(X)."),
        expect_hit: false,
    });
    script.push(CacheStep {
        label: "post-mutation re-query",
        add: None,
        rule: None,
        expect_hit: true,
    });

    for &t in threads {
        for &strategy in strategies_for(case) {
            let build = || {
                let mut db = DeductiveDb::new();
                db.load(&case.program())
                    .map_err(|e| fail(format!("load: {e}")))?;
                db.set_threads(t);
                db.solve_options.max_levels = 200;
                Ok::<DeductiveDb, Mismatch>(db)
            };
            let mut off = build()?;
            let mut on = build()?;
            on.set_cache_enabled(true);
            let pose = |db: &mut DeductiveDb| match db.query_with(&case.query, strategy) {
                Ok(o) if o.trip.is_some() => (
                    Outcome::Budget(o.trip.expect("matched Some").to_string()),
                    false,
                ),
                Ok(o) => {
                    let mut answers: Vec<String> =
                        o.answers.iter().map(|a| a.to_string()).collect();
                    answers.sort();
                    (
                        Outcome::Ok {
                            answers,
                            counters: o.counters,
                        },
                        o.cached,
                    )
                }
                Err(e) => (Outcome::Err(e.to_string()), false),
            };
            let mut prev_complete = false;
            for step in &script {
                if let Some(fact) = &step.add {
                    off.add_fact(fact.clone())
                        .map_err(|e| fail(format!("insert: {e}")))?;
                    on.add_fact(fact.clone())
                        .map_err(|e| fail(format!("insert: {e}")))?;
                }
                if let Some(rule) = step.rule {
                    off.load_rule(rule)
                        .map_err(|e| fail(format!("rule: {e}")))?;
                    on.load_rule(rule).map_err(|e| fail(format!("rule: {e}")))?;
                }
                let (off_out, _) = pose(&mut off);
                let (on_out, on_cached) = pose(&mut on);
                if on_out.without_counters() != off_out.without_counters() {
                    return Err(fail(format!(
                        "{strategy} at threads={t} diverges cache-on vs cache-off \
                         after `{}`:\n  off: {:?}\nvs on: {:?}",
                        step.label, off_out, on_out
                    )));
                }
                let complete = matches!(&on_out, Outcome::Ok { .. });
                if step.expect_hit && prev_complete && complete && !on_cached {
                    return Err(fail(format!(
                        "{strategy} at threads={t}: `{}` should have been a cache hit",
                        step.label
                    )));
                }
                if !step.expect_hit && on_cached {
                    return Err(fail(format!(
                        "{strategy} at threads={t}: `{}` served a stale cache entry",
                        step.label
                    )));
                }
                prev_complete = complete;
            }
        }
    }
    Ok(())
}

/// Runs `count` consecutive seeds through the cache-consistency oracle.
/// Returns the number of cases checked.
pub fn run_seeds_cached(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(FuzzCase, Mismatch)>> {
    for seed in start..start + count {
        let case = crate::workloads::fuzz::gen_case(seed);
        if let Err(m) = check_cache_consistency(&case, threads) {
            return Err(Box::new((case, m)));
        }
    }
    Ok(count)
}

/// One witness that failed lineage validation.
fn bad_witness(strategy: Strategy, t: usize, w: &crate::provenance::Witness, why: &str) -> String {
    format!(
        "{strategy} at threads={t}: invalid witness for `{}` via `{}`: {why}",
        w.head, w.rule
    )
}

/// Validates every witness in `snap` against the database it was
/// recorded from: the witness must ground-instantiate its rule (one
/// consistent substitution maps the rule head to the witness head and
/// each rule body atom to the corresponding witness body atom), and
/// every body atom must itself be derivable — a satisfied builtin, an
/// EDB fact, or the head of another witness in the snapshot.
fn validate_witnesses(
    snap: &[crate::provenance::Witness],
    db: &mut DeductiveDb,
    strategy: Strategy,
    t: usize,
) -> Result<(), String> {
    use crate::engine::{eval_builtin, is_builtin_atom, BuiltinOutcome};
    use crate::logic::{unify_atoms, Subst};
    let derived: std::collections::HashSet<&crate::logic::Atom> =
        snap.iter().map(|w| &w.head).collect();
    for w in snap {
        if !w.head.is_ground() {
            return Err(bad_witness(strategy, t, w, "head is not ground"));
        }
        if w.rule.body.len() != w.body.len() {
            return Err(bad_witness(strategy, t, w, "body arity mismatch"));
        }
        // One consistent substitution must instantiate the whole rule.
        let mut s = Subst::new();
        if !unify_atoms(&mut s, &w.rule.head, &w.head) {
            return Err(bad_witness(strategy, t, w, "head does not match rule head"));
        }
        for (ra, wa) in w.rule.body.iter().zip(&w.body) {
            if !unify_atoms(&mut s, ra, wa) {
                return Err(bad_witness(
                    strategy,
                    t,
                    w,
                    &format!("body atom `{wa}` does not instantiate `{ra}`"),
                ));
            }
        }
        // Every body atom must be independently derivable.
        for wa in &w.body {
            if is_builtin_atom(wa) {
                match eval_builtin(wa, &Subst::new()) {
                    Ok(Some(BuiltinOutcome::Solutions(sols))) if !sols.is_empty() => {}
                    other => {
                        return Err(bad_witness(
                            strategy,
                            t,
                            w,
                            &format!("builtin `{wa}` does not hold ({other:?})"),
                        ));
                    }
                }
                continue;
            }
            if !wa.is_ground() {
                return Err(bad_witness(
                    strategy,
                    t,
                    w,
                    &format!("body atom `{wa}` is not ground"),
                ));
            }
            let in_edb = db
                .system()
                .edb
                .relation(wa.pred)
                .is_some_and(|r| r.contains(&crate::relation::Tuple::new(wa.args.clone())));
            if !in_edb && !derived.contains(wa) {
                return Err(bad_witness(
                    strategy,
                    t,
                    w,
                    &format!("body atom `{wa}` is neither an EDB fact nor witnessed"),
                ));
            }
        }
    }
    Ok(())
}

/// The **lineage invariant** (DESIGN.md §12): with provenance recording
/// on, every witness in the arena must ground-instantiate a real rule of
/// the program whose body atoms are all themselves derivable — builtins
/// that hold, EDB facts, or heads of other recorded witnesses — and for
/// a fixed strategy the full witness snapshot (contents *and* first-wins
/// order) must be bit-identical at every thread count.
///
/// Callers must serialize: provenance recording is process-global, so
/// this function holds the [`crate::provenance::exclusive`] session for
/// its whole run.
pub fn check_provenance(case: &FuzzCase, threads: &[usize]) -> Result<(), Mismatch> {
    assert!(!threads.is_empty(), "need at least one thread count");
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let _session = crate::provenance::exclusive();
    for &strategy in strategies_for(case) {
        let mut reference: Option<(usize, Vec<crate::provenance::Witness>)> = None;
        for &t in threads {
            let mut db = DeductiveDb::new();
            if let Err(e) = db.load(&case.program()) {
                crate::provenance::disable();
                return Err(fail(format!("load: {e}")));
            }
            db.set_threads(t);
            db.solve_options.max_levels = 200;
            crate::provenance::clear();
            crate::provenance::enable();
            let run = db.query_with(&case.query, strategy);
            let snap = crate::provenance::snapshot();
            crate::provenance::disable();
            crate::provenance::clear();
            match run {
                // Partial results and budget stops still must have only
                // valid witnesses; the snapshot check below covers them.
                Ok(_) => {}
                Err(DbError::Eval(
                    EvalError::DepthExceeded { .. }
                    | EvalError::FuelExceeded { .. }
                    | EvalError::BudgetExceeded { .. },
                )) => {}
                Err(e) => return Err(fail(format!("{strategy} failed: {e}"))),
            }
            validate_witnesses(&snap, &mut db, strategy, t).map_err(fail)?;
            match &reference {
                None => reference = Some((t, snap)),
                Some((t0, ref_snap)) => {
                    if &snap != ref_snap {
                        return Err(fail(format!(
                            "{strategy}: witness snapshot differs between threads={t0} \
                             and threads={t}: {} vs {} witnesses",
                            ref_snap.len(),
                            snap.len()
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs `count` consecutive seeds through the lineage oracle. Returns
/// the number of cases checked.
pub fn run_seeds_provenance(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(FuzzCase, Mismatch)>> {
    for seed in start..start + count {
        let case = crate::workloads::fuzz::gen_case(seed);
        if let Err(m) = check_provenance(&case, threads) {
            return Err(Box::new((case, m)));
        }
    }
    Ok(count)
}

/// The strategy a mutation session runs under: the parallel semi-naive
/// family where the program is bottom-up evaluable (the path DRed repair
/// shares), goal-directed resolution for functional recursions (no
/// materialization — the session still exercises retraction against the
/// cache and the rebuilt twin).
fn mutation_strategy(class: StrategyClass) -> Strategy {
    match class {
        StrategyClass::GoalDirected => Strategy::TopDown,
        StrategyClass::All | StrategyClass::BottomUp => Strategy::SemiNaive,
    }
}

fn pose_mutation_query(db: &mut DeductiveDb, query: &str, strategy: Strategy) -> (Outcome, bool) {
    match db.query_with(query, strategy) {
        Ok(o) if o.trip.is_some() => (
            Outcome::Budget(o.trip.expect("matched Some").to_string()),
            false,
        ),
        Ok(o) => {
            let mut answers: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
            answers.sort();
            (
                Outcome::Ok {
                    answers,
                    counters: o.counters,
                },
                o.cached,
            )
        }
        Err(DbError::Eval(
            e @ (EvalError::DepthExceeded { .. }
            | EvalError::FuelExceeded { .. }
            | EvalError::BudgetExceeded { .. }),
        )) => (Outcome::Budget(e.to_string()), false),
        Err(e) => (Outcome::Err(e.to_string()), false),
    }
}

/// Runs one mutation session at one thread count and returns its full
/// log — one line per step covering answers, counters, cache behavior,
/// repair work, and the materialization digest. The log is the
/// cross-thread comparison key: it must be bit-identical at every
/// thread count.
fn run_mutation_session(
    script: &MutationScript,
    strategy: Strategy,
    t: usize,
) -> Result<Vec<String>, Mismatch> {
    let case = &script.case;
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let parse_atom = |src: &str| {
        crate::logic::parse_query(src)
            .unwrap_or_else(|e| panic!("mutation fact `{src}` must parse: {e}"))
    };
    let build = |facts: &[String]| -> Result<DeductiveDb, Mismatch> {
        let mut db = DeductiveDb::new();
        let mut src = case.rules.clone();
        src.push('\n');
        for f in facts {
            src.push_str(f);
            src.push('\n');
        }
        db.load(&src).map_err(|e| fail(format!("load: {e}")))?;
        db.set_threads(t);
        db.solve_options.max_levels = 200;
        Ok(db)
    };
    // The live side: answer cache on, materialized when the program is
    // bottom-up evaluable. The twin is rebuilt from scratch after every
    // mutation — recompute-from-scratch is the ground truth.
    let mut live = build(&case.facts)?;
    live.set_cache_enabled(true);
    // Functional recursions enumerate unboundedly bottom-up (list heads
    // grow): never ask them to materialize. Everything else must accept.
    let materialized = if case.class == StrategyClass::GoalDirected {
        false
    } else {
        live.materialize()
            .map_err(|e| fail(format!("materialize: {e}")))?
    };
    let mut facts: Vec<String> = case.facts.clone();
    let mut log: Vec<String> = vec![format!("materialized: {materialized}")];
    let mut prev_complete = false;

    // Step 0 is the cold query; each subsequent step applies one op and
    // re-poses the same query on both sides.
    for step in 0..=script.ops.len() {
        let mut label = String::from("init");
        let mut removed_line = String::new();
        let mut expect_hit = false;
        if step > 0 {
            let op = &script.ops[step - 1];
            label = op.to_string();
            match op {
                MutOp::Insert(f) => {
                    // Any insert bumps the predicate's epoch — even a
                    // duplicate — so the next pose must miss.
                    live.add_fact(parse_atom(f))
                        .map_err(|e| fail(format!("insert {f}: {e}")))?;
                    facts.push(format!("{f}."));
                    expect_hit = false;
                }
                MutOp::Retract(f) => {
                    let present = facts.iter().any(|x| x.trim().trim_end_matches('.') == f);
                    let out = live
                        .retract_fact(&parse_atom(f))
                        .map_err(|e| fail(format!("retract {f}: {e}")))?;
                    if out.removed != present {
                        return Err(fail(format!(
                            "retract {f} at threads={t}: removed={} but the \
                             rebuilt twin says present={present}",
                            out.removed
                        )));
                    }
                    if present {
                        facts.retain(|x| x.trim().trim_end_matches('.') != f);
                    }
                    // A no-op retraction moves nothing: cached answers
                    // must keep hitting.
                    expect_hit = !out.removed;
                    removed_line = format!(" removed={} repair={:?}", out.removed, out.repair);
                }
            }
        }
        let (live_out, cached) = pose_mutation_query(&mut live, &case.query, strategy);
        let mut twin = build(&facts)?;
        let (twin_out, _) = pose_mutation_query(&mut twin, &case.query, strategy);
        if live_out.without_counters() != twin_out.without_counters() {
            return Err(fail(format!(
                "{strategy} at threads={t} diverges from the rebuilt twin \
                 after `{label}`:\n  live: {live_out:?}\nvs twin: {twin_out:?}"
            )));
        }
        let complete = matches!(&live_out, Outcome::Ok { .. });
        if step > 0 && expect_hit && prev_complete && complete && !cached {
            return Err(fail(format!(
                "{strategy} at threads={t}: re-query after no-op `{label}` \
                 should have been a cache hit"
            )));
        }
        if !expect_hit && cached && step > 0 {
            return Err(fail(format!(
                "{strategy} at threads={t}: re-query after `{label}` served \
                 a stale cache entry"
            )));
        }
        prev_complete = complete;
        // The incrementally repaired materialization must be bit-identical
        // to one built from scratch over the twin's EDB.
        let mut digest_line = String::new();
        if materialized {
            if !live.is_materialized() {
                return Err(fail(format!(
                    "materialization lost after `{label}` at threads={t} \
                     with no budget set"
                )));
            }
            let twin_ok = twin
                .materialize()
                .map_err(|e| fail(format!("twin materialize: {e}")))?;
            if !twin_ok {
                return Err(fail(format!(
                    "twin refuses to materialize after `{label}` at threads={t}"
                )));
            }
            let live_digest = live.materialization_digest().expect("checked above");
            let twin_digest = twin.materialization_digest().expect("checked above");
            if live_digest != twin_digest {
                let only_live: Vec<&String> = live_digest
                    .iter()
                    .filter(|l| !twin_digest.contains(l))
                    .collect();
                let only_twin: Vec<&String> = twin_digest
                    .iter()
                    .filter(|l| !live_digest.contains(l))
                    .collect();
                return Err(fail(format!(
                    "repaired materialization diverges from a from-scratch \
                     rebuild after `{label}` at threads={t}:\n  only live: \
                     {only_live:?}\n  only twin: {only_twin:?}"
                )));
            }
            digest_line = format!(
                " digest={} rows, repairs={}",
                live_digest.len(),
                live.materialization().expect("checked above").repairs()
            );
        }
        log.push(format!(
            "{label}:{removed_line} cached={cached} {live_out:?}{digest_line}"
        ));
    }
    Ok(log)
}

/// The lineage leg of the mutation oracle: with recording on, every
/// witness surviving a retraction must still be valid — no proof may
/// cite the retracted fact, directly or transitively
/// ([`crate::provenance::evict_dependents`]).
///
/// Holds the process-global [`crate::provenance::exclusive`] session.
fn check_retraction_provenance(
    script: &MutationScript,
    strategy: Strategy,
    t: usize,
) -> Result<(), Mismatch> {
    if !script.ops.iter().any(|o| matches!(o, MutOp::Retract(_))) {
        return Ok(());
    }
    let case = &script.case;
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let _session = crate::provenance::exclusive();
    let mut db = DeductiveDb::new();
    if let Err(e) = db.load(&case.program()) {
        return Err(fail(format!("load: {e}")));
    }
    db.set_threads(t);
    db.solve_options.max_levels = 200;
    crate::provenance::clear();
    crate::provenance::enable();
    let result = (|| {
        let record = |db: &mut DeductiveDb| match db.query_with(&case.query, strategy) {
            Ok(_) => Ok(()),
            Err(DbError::Eval(
                EvalError::DepthExceeded { .. }
                | EvalError::FuelExceeded { .. }
                | EvalError::BudgetExceeded { .. },
            )) => Ok(()),
            Err(e) => Err(fail(format!("{strategy} failed: {e}"))),
        };
        record(&mut db)?;
        for op in &script.ops {
            let atom = crate::logic::parse_query(match op {
                MutOp::Insert(f) | MutOp::Retract(f) => f,
            })
            .unwrap_or_else(|e| panic!("mutation fact must parse: {e}"));
            match op {
                MutOp::Insert(f) => {
                    db.add_fact(atom)
                        .map_err(|e| fail(format!("insert {f}: {e}")))?;
                }
                MutOp::Retract(f) => {
                    db.retract_fact(&atom)
                        .map_err(|e| fail(format!("retract {f}: {e}")))?;
                    let snap = crate::provenance::snapshot();
                    validate_witnesses(&snap, &mut db, strategy, t)
                        .map_err(|why| fail(format!("after retract {f}: {why}")))?;
                }
            }
            // Re-record under the mutated EDB so later retractions also
            // exercise eviction against fresh lineage.
            record(&mut db)?;
        }
        Ok(())
    })();
    crate::provenance::disable();
    crate::provenance::clear();
    result
}

/// The **retraction-consistency invariant** (DESIGN.md §13): a live
/// database running an interleaved insert/retract/query session — answer
/// cache on, materialization maintained by incremental DRed repair —
/// must stay indistinguishable from a twin rebuilt from scratch after
/// every mutation, and the whole session log (answers, counters, cache
/// hit/miss behavior, repair work, materialization digests) must be
/// bit-identical at every thread count.
pub fn check_retract_consistency(
    script: &MutationScript,
    threads: &[usize],
) -> Result<(), Mismatch> {
    assert!(!threads.is_empty(), "need at least one thread count");
    let case = &script.case;
    let strategy = mutation_strategy(case.class);
    let mut reference: Option<(usize, Vec<String>)> = None;
    for &t in threads {
        let log = run_mutation_session(script, strategy, t)?;
        match &reference {
            None => reference = Some((t, log)),
            Some((t0, ref_log)) => {
                if &log != ref_log {
                    return Err(Mismatch {
                        seed: case.seed,
                        shape: case.shape,
                        detail: format!(
                            "session log differs between threads={t0} and \
                             threads={t}:\n{ref_log:#?}\nvs\n{log:#?}"
                        ),
                    });
                }
            }
        }
    }
    check_retraction_provenance(script, strategy, threads[0])
}

/// Greedily shrinks a failing mutation script: first halve the op
/// sequence (a shorter session localizes which mutation breaks), then
/// halve the EDB like [`shrink_case`].
pub fn shrink_mutation_script(script: &MutationScript, threads: &[usize]) -> MutationScript {
    shrink_script_by(script, threads, check_retract_consistency)
}

/// The halving loop behind [`shrink_mutation_script`] and
/// [`shrink_recovery_script`]: keeps any half on which `check` still
/// fails, ops first, then facts.
fn shrink_script_by(
    script: &MutationScript,
    threads: &[usize],
    check: fn(&MutationScript, &[usize]) -> Result<(), Mismatch>,
) -> MutationScript {
    let mut cur = script.clone();
    while cur.ops.len() > 1 {
        let half = cur.ops.len() / 2;
        let first = MutationScript {
            case: cur.case.clone(),
            ops: cur.ops[..half].to_vec(),
        };
        if check(&first, threads).is_err() {
            cur = first;
            continue;
        }
        let second = MutationScript {
            case: cur.case.clone(),
            ops: cur.ops[half..].to_vec(),
        };
        if check(&second, threads).is_err() {
            cur = second;
            continue;
        }
        break;
    }
    while cur.case.facts.len() > 1 {
        let half = cur.case.facts.len() / 2;
        let first = MutationScript {
            case: FuzzCase {
                facts: cur.case.facts[..half].to_vec(),
                ..cur.case.clone()
            },
            ops: cur.ops.clone(),
        };
        if check(&first, threads).is_err() {
            cur = first;
            continue;
        }
        let second = MutationScript {
            case: FuzzCase {
                facts: cur.case.facts[half..].to_vec(),
                ..cur.case.clone()
            },
            ops: cur.ops.clone(),
        };
        if check(&second, threads).is_err() {
            cur = second;
            continue;
        }
        break;
    }
    cur
}

/// Runs `count` consecutive seeds through the retraction-consistency
/// oracle. Returns the total number of mutation ops replayed.
pub fn run_seeds_mutate(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(MutationScript, Mismatch)>> {
    let mut total_ops = 0u64;
    for seed in start..start + count {
        let script = crate::workloads::fuzz::gen_mutation_script(seed);
        match check_retract_consistency(&script, threads) {
            Ok(()) => total_ops += script.ops.len() as u64,
            Err(_) => {
                let shrunk = shrink_mutation_script(&script, threads);
                let m = check_retract_consistency(&shrunk, threads)
                    .expect_err("shrunk script must still fail");
                return Err(Box::new((shrunk, m)));
            }
        }
    }
    Ok(total_ops)
}

/// Runs `count` consecutive seeds through the crash-consistency oracle,
/// deriving each seed's fault stream from the case seed so reruns
/// reproduce. Returns the number of cases checked.
pub fn run_seeds_disrupted(
    start: u64,
    count: u64,
    threads: &[usize],
    disruption: &Disruption,
) -> Result<u64, Box<(FuzzCase, Mismatch)>> {
    for seed in start..start + count {
        let case = crate::workloads::fuzz::gen_case(seed);
        let d = Disruption {
            fault_seed: disruption.fault_seed ^ seed,
            ..*disruption
        };
        if let Err(m) = check_crash_consistency(&case, threads, &d) {
            return Err(Box::new((case, m)));
        }
    }
    Ok(count)
}

// ---------------------------------------------------------------------
// The recovery oracle (`fuzz --crash`): kill a durable session at a
// seed-chosen persistence point, recover, and require the recovered
// database to be indistinguishable from an in-memory twin that applied
// exactly the operations the write-ahead log made durable.
// ---------------------------------------------------------------------

/// SplitMix64: derives the crash point and fault kind from the case
/// seed so every failure reproduces from its seed alone.
#[cfg(feature = "fault-inject")]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A scratch data dir under `target/chainsplit-recovery/`, wiped before
/// use. Keyed by pid so parallel `cargo test` processes never collide.
fn recovery_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target")
        .join("chainsplit-recovery")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Did this error kill the session (an injected crash at a persistence
/// point), as opposed to a genuine failure?
fn is_injected_crash(e: &DbError) -> bool {
    matches!(e, DbError::Storage(s) if s.is_crash())
}

/// Runs the script's durable session in `dir` until it completes or an
/// injected crash kills it: open, load the program, apply each mutation
/// op, and snapshot once mid-script so recovery exercises a snapshot
/// plus a WAL suffix. Returns whether the session was killed, or a
/// genuine (non-crash) failure.
fn run_durable_session(
    script: &MutationScript,
    dir: &std::path::Path,
    t: usize,
) -> Result<bool, Mismatch> {
    let case = &script.case;
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let mut db = match DeductiveDb::open(dir) {
        Ok(db) => db,
        Err(ref e) if is_injected_crash(e) => return Ok(true),
        Err(e) => return Err(fail(format!("durable open: {e}"))),
    };
    db.set_threads(t);
    db.solve_options.max_levels = 200;
    let parse_atom = |src: &str| {
        crate::logic::parse_query(src)
            .unwrap_or_else(|e| panic!("mutation fact `{src}` must parse: {e}"))
    };
    // Op 0 of the durable history is the program load itself.
    match db.load(&case.program()) {
        Ok(()) => {}
        Err(ref e) if is_injected_crash(e) => return Ok(true),
        Err(e) => return Err(fail(format!("durable load: {e}"))),
    }
    let snapshot_after = script.ops.len() / 2;
    for (i, op) in script.ops.iter().enumerate() {
        let applied = match op {
            MutOp::Insert(f) => db.add_fact(parse_atom(f)),
            MutOp::Retract(f) => db.retract_fact(&parse_atom(f)).map(|_| ()),
        };
        match applied {
            Ok(()) => {}
            Err(ref e) if is_injected_crash(e) => return Ok(true),
            Err(e) => return Err(fail(format!("durable {op}: {e}"))),
        }
        if i + 1 == snapshot_after && snapshot_after > 0 {
            match db.snapshot() {
                Ok(_) => {}
                Err(ref e) if is_injected_crash(e) => return Ok(true),
                Err(e) => return Err(fail(format!("durable snapshot: {e}"))),
            }
        }
    }
    // The session ends without a final snapshot — a SIGKILL with a
    // synced WAL — so recovery always has a suffix to replay.
    Ok(false)
}

/// The crash the doomed session is armed with. Without `fault-inject`
/// only the clean-kill leg (`None`) exists.
#[cfg(feature = "fault-inject")]
type CrashPlan = chainsplit_governor::faults::FsFaultPlan;
#[cfg(not(feature = "fault-inject"))]
type CrashPlan = ();

/// Counts the persistence points a full, uncrashed session visits —
/// the sample space the crash plans draw from.
#[cfg(feature = "fault-inject")]
fn count_persistence_points(script: &MutationScript) -> Result<u64, Mismatch> {
    use chainsplit_governor::faults::{arm_fs, disarm_fs, fs_points_visited, FsFault, FsFaultPlan};
    let dir = recovery_dir(&format!("count-{}", script.case.seed));
    arm_fs(FsFaultPlan {
        point: u64::MAX,
        fault: FsFault::TornWrite,
    });
    let outcome = run_durable_session(script, &dir, 1);
    let points = fs_points_visited();
    disarm_fs();
    let _ = std::fs::remove_dir_all(&dir);
    outcome?;
    Ok(points)
}

/// Derives the crash plan (point, fault kind) from the case seed.
#[cfg(feature = "fault-inject")]
fn crash_plan_for(script: &MutationScript) -> Result<Option<CrashPlan>, Mismatch> {
    use chainsplit_governor::faults::{FsFault, FsFaultPlan};
    let points = count_persistence_points(script)?;
    if points == 0 {
        return Ok(None);
    }
    let r = splitmix(script.case.seed ^ 0x5AFE_C0DE);
    Ok(Some(FsFaultPlan {
        point: r % points,
        fault: FsFault::ALL[(r >> 32) as usize % FsFault::ALL.len()],
    }))
}

/// Without `fault-inject` the oracle still runs its clean-kill leg: the
/// session is dropped with no final snapshot (as a SIGKILL between
/// fsyncs would leave it) and recovery must restore every durable op.
#[cfg(not(feature = "fault-inject"))]
fn crash_plan_for(_script: &MutationScript) -> Result<Option<CrashPlan>, Mismatch> {
    Ok(None)
}

/// One recovered-vs-twin comparison at one thread count. Returns the
/// session log — the cross-thread comparison key.
fn run_recovery_session(
    script: &MutationScript,
    t: usize,
    plan: Option<CrashPlan>,
) -> Result<Vec<String>, Mismatch> {
    let case = &script.case;
    let fail = |detail: String| Mismatch {
        seed: case.seed,
        shape: case.shape,
        detail,
    };
    let strategy = mutation_strategy(case.class);
    let dir = recovery_dir(&format!("s{}-t{t}", case.seed));

    // Run the doomed session. With a plan armed the chosen persistence
    // point reports the process killed after leaving its damage on disk;
    // without one the drop below is the kill.
    #[cfg(feature = "fault-inject")]
    if let Some(p) = plan {
        chainsplit_governor::faults::arm_fs(p);
    }
    #[cfg(not(feature = "fault-inject"))]
    let _ = plan;
    let session = run_durable_session(script, &dir, t);
    #[cfg(feature = "fault-inject")]
    chainsplit_governor::faults::disarm_fs();
    let killed = session?;
    let _ = killed; // the log records ops_durable, which implies it

    // Recovery must succeed regardless of where the crash landed: the
    // torn tail is truncated, never replayed; a half-renamed snapshot
    // falls back to the previous one.
    let mut recovered =
        DeductiveDb::open(&dir).map_err(|e| fail(format!("recovery at threads={t}: {e}")))?;
    recovered.set_threads(t);
    recovered.solve_options.max_levels = 200;
    recovered.set_cache_enabled(true);
    let report = recovered
        .recovery_report()
        .cloned()
        .expect("open always produces a report");
    let ops_durable = report.ops_durable;
    if ops_durable > 1 + script.ops.len() as u64 {
        return Err(fail(format!(
            "recovery at threads={t}: {ops_durable} ops durable but the \
             session only performed {}",
            1 + script.ops.len()
        )));
    }

    // The in-memory twin applies exactly the durable prefix: op 0 is
    // the program load, op j > 0 is script op j-1.
    let mut twin = DeductiveDb::new();
    twin.set_threads(t);
    twin.solve_options.max_levels = 200;
    twin.set_cache_enabled(true);
    let parse_atom = |src: &str| {
        crate::logic::parse_query(src)
            .unwrap_or_else(|e| panic!("mutation fact `{src}` must parse: {e}"))
    };
    if ops_durable > 0 {
        twin.load(&case.program())
            .map_err(|e| fail(format!("twin load: {e}")))?;
        for op in &script.ops[..ops_durable as usize - 1] {
            match op {
                MutOp::Insert(f) => twin
                    .add_fact(parse_atom(f))
                    .map_err(|e| fail(format!("twin {op}: {e}")))?,
                MutOp::Retract(f) => {
                    twin.retract_fact(&parse_atom(f))
                        .map_err(|e| fail(format!("twin {op}: {e}")))?;
                }
            };
        }
    }

    // Epoch vectors must match bit-for-bit: they are the clock every
    // answer- and plan-cache invalidation decision reads.
    if recovered.program_epoch() != twin.program_epoch() {
        return Err(fail(format!(
            "program epoch diverged at threads={t}: recovered {} vs twin {}",
            recovered.program_epoch(),
            twin.program_epoch()
        )));
    }
    let epoch_vec = |db: &DeductiveDb| -> Vec<String> {
        let mut v: Vec<String> = db
            .edb_epochs()
            .iter()
            .map(|(p, e)| format!("{p}={e}"))
            .collect();
        v.sort();
        v
    };
    let (rec_epochs, twin_epochs) = (epoch_vec(&recovered), epoch_vec(&twin));
    if rec_epochs != twin_epochs {
        return Err(fail(format!(
            "edb epochs diverged at threads={t}:\n  recovered: {rec_epochs:?}\n  \
             vs twin: {twin_epochs:?}"
        )));
    }

    // Answers: the recovered database must tell the twin's story.
    let (rec_out, _) = pose_mutation_query(&mut recovered, &case.query, strategy);
    let (twin_out, _) = pose_mutation_query(&mut twin, &case.query, strategy);
    if rec_out.without_counters() != twin_out.without_counters() {
        return Err(fail(format!(
            "{strategy} at threads={t} diverges after recovery \
             ({ops_durable} ops durable):\n  recovered: {rec_out:?}\nvs twin: {twin_out:?}"
        )));
    }

    // Cache discipline: with restored epochs, an identical re-pose must
    // hit on both sides (nothing mutated in between).
    let complete = matches!(&rec_out, Outcome::Ok { .. });
    let (_, rec_hit) = pose_mutation_query(&mut recovered, &case.query, strategy);
    let (_, twin_hit) = pose_mutation_query(&mut twin, &case.query, strategy);
    if complete && (!rec_hit || !twin_hit) {
        return Err(fail(format!(
            "re-pose after recovery at threads={t} should hit the answer \
             cache on both sides (recovered: {rec_hit}, twin: {twin_hit})"
        )));
    }

    // Materialization: a fixpoint computed over the recovered EDB must
    // be bit-identical to one over the twin's.
    let mut digest_rows = 0usize;
    if case.class != StrategyClass::GoalDirected {
        let rec_ok = recovered
            .materialize()
            .map_err(|e| fail(format!("recovered materialize: {e}")))?;
        let twin_ok = twin
            .materialize()
            .map_err(|e| fail(format!("twin materialize: {e}")))?;
        if rec_ok != twin_ok {
            return Err(fail(format!(
                "materialization acceptance diverged at threads={t}: \
                 recovered {rec_ok} vs twin {twin_ok}"
            )));
        }
        if rec_ok {
            let rec_digest = recovered.materialization_digest().expect("accepted above");
            let twin_digest = twin.materialization_digest().expect("accepted above");
            if rec_digest != twin_digest {
                let only_rec: Vec<&String> = rec_digest
                    .iter()
                    .filter(|l| !twin_digest.contains(l))
                    .collect();
                let only_twin: Vec<&String> = twin_digest
                    .iter()
                    .filter(|l| !rec_digest.contains(l))
                    .collect();
                return Err(fail(format!(
                    "recovered materialization diverges from the twin at \
                     threads={t}:\n  only recovered: {only_rec:?}\n  only twin: {only_twin:?}"
                )));
            }
            digest_rows = rec_digest.len();
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(vec![
        format!(
            "durable: {ops_durable} op(s), snapshot seq {}, {} replayed, {} torn byte(s)",
            report.snapshot_seq, report.replayed_records, report.truncated_bytes
        ),
        format!(
            "epochs: program={} edb={rec_epochs:?}",
            twin.program_epoch()
        ),
        format!("query: {rec_out:?}"),
        format!("digest: {digest_rows} row(s)"),
    ])
}

/// The **recovery-consistency invariant** (DESIGN.md §15): a durable
/// session killed at an arbitrary persistence point — mid-frame, between
/// write and fsync, either side of a snapshot rename — must recover to a
/// database indistinguishable from an in-memory twin that applied
/// exactly the operations the log made durable: same answers, same
/// epoch vector (so cache invalidation stays honest), same cache
/// hit/miss behavior, same materialization digest. The whole recovery
/// log must be bit-identical at every thread count.
///
/// The crash point and fault kind derive from the case seed. Callers
/// must serialize: the filesystem fault plan is process-global.
pub fn check_recovery_consistency(
    script: &MutationScript,
    threads: &[usize],
) -> Result<(), Mismatch> {
    let plan = crash_plan_for(script)?;
    check_recovery_with_plan(script, threads, plan)
}

/// The thread loop behind [`check_recovery_consistency`] and
/// [`check_recovery_sweep`]: one crash plan, every thread count, logs
/// bit-identical.
fn check_recovery_with_plan(
    script: &MutationScript,
    threads: &[usize],
    plan: Option<CrashPlan>,
) -> Result<(), Mismatch> {
    assert!(!threads.is_empty(), "need at least one thread count");
    let case = &script.case;
    let mut reference: Option<(usize, Vec<String>)> = None;
    for &t in threads {
        let log = run_recovery_session(script, t, plan)?;
        match &reference {
            None => reference = Some((t, log)),
            Some((t0, ref_log)) => {
                if &log != ref_log {
                    return Err(Mismatch {
                        seed: case.seed,
                        shape: case.shape,
                        detail: format!(
                            "recovery log differs between threads={t0} and \
                             threads={t} (crash plan {plan:?}):\n{ref_log:#?}\nvs\n{log:#?}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Crash-at-**every**-failpoint: kills the session at each persistence
/// point it visits (fault kinds rotating so all six appear across the
/// sweep), plus the clean-kill leg, and requires every recovery to match
/// its twin. Returns the number of crash plans exercised. Without
/// `fault-inject` only the clean-kill leg runs.
pub fn check_recovery_sweep(script: &MutationScript, threads: &[usize]) -> Result<u64, Mismatch> {
    check_recovery_with_plan(script, threads, None)?;
    #[cfg(not(feature = "fault-inject"))]
    {
        Ok(1)
    }
    #[cfg(feature = "fault-inject")]
    {
        use chainsplit_governor::faults::{FsFault, FsFaultPlan};
        let points = count_persistence_points(script)?;
        for point in 0..points {
            let plan = FsFaultPlan {
                point,
                fault: FsFault::ALL[point as usize % FsFault::ALL.len()],
            };
            check_recovery_with_plan(script, threads, Some(plan))?;
        }
        Ok(1 + points)
    }
}

/// Greedily shrinks a failing recovery script, halving the op sequence
/// first and then the EDB, like [`shrink_mutation_script`].
pub fn shrink_recovery_script(script: &MutationScript, threads: &[usize]) -> MutationScript {
    shrink_script_by(script, threads, check_recovery_consistency)
}

/// Runs `count` consecutive seeds through the recovery oracle. Returns
/// the total number of durable sessions recovered.
pub fn run_seeds_crash(
    start: u64,
    count: u64,
    threads: &[usize],
) -> Result<u64, Box<(MutationScript, Mismatch)>> {
    for seed in start..start + count {
        let script = crate::workloads::fuzz::gen_mutation_script(seed);
        if check_recovery_consistency(&script, threads).is_err() {
            let shrunk = shrink_recovery_script(&script, threads);
            let m = check_recovery_consistency(&shrunk, threads)
                .expect_err("shrunk script must still fail");
            return Err(Box::new((shrunk, m)));
        }
    }
    Ok(count)
}
