//! # chain-split
//!
//! A deductive database engine built around **chain-split evaluation**
//! (Jiawei Han, *Chain-Split Evaluation in Deductive Databases*, ICDE 1992).
//!
//! Many recursions compile into regular *chain generating paths*. Classical
//! methods (transitive closure, magic sets, counting) treat a path as an
//! inseparable unit; chain-split evaluation splits a path into an immediately
//! evaluable portion and a delayed-evaluation portion, which is required for
//! finite evaluation of functional recursions and profitable whenever a path
//! predicate has a large join expansion ratio.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`logic`]: the Horn-clause language (terms, rules, parser, unification);
//! - [`relation`]: EDB storage, indexes and statistics;
//! - [`chain`]: recursion compilation into chain forms, finiteness analysis;
//! - [`engine`]: baseline evaluators (naive, semi-naive, magic sets,
//!   counting, top-down SLD) and moded builtins;
//! - [`core`]: the chain-split planner and Algorithms 3.1–3.3;
//! - [`governor`]: resource budgets, deadlines, cooperative cancellation,
//!   and deterministic fault injection (feature `fault-inject`);
//! - [`provenance`]: opt-in why-provenance — witness recording, proof
//!   trees, and the schema-versioned `:why export` document;
//! - [`workloads`]: deterministic synthetic workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use chain_split::core::DeductiveDb;
//!
//! let mut db = DeductiveDb::new();
//! db.load(
//!     "parent(adam, cain). parent(adam, abel). parent(eve, cain). parent(eve, abel).
//!      sibling(cain, abel). sibling(abel, cain).
//!      sg(X, Y) :- sibling(X, Y).
//!      sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
//! )
//! .unwrap();
//! let answers = db.query("sg(adam, Y)").unwrap();
//! assert!(!answers.is_empty());
//! ```

pub mod differential;

pub use chainsplit_chain as chain;
pub use chainsplit_core as core;
pub use chainsplit_engine as engine;
pub use chainsplit_governor as governor;
pub use chainsplit_logic as logic;
pub use chainsplit_provenance as provenance;
pub use chainsplit_relation as relation;
pub use chainsplit_storage as storage;
pub use chainsplit_workloads as workloads;
