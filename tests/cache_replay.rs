//! Corpus replay through the cache-consistency oracle.
//!
//! Every minimized corpus program runs a mutation-interleaved query
//! session on two databases in lockstep — one with the answer cache
//! enabled — at thread counts 1 and 4. The cached database must report
//! the same answers and trips at every step, hit the cache on identical
//! re-queries and after unrelated fact inserts, and invalidate after
//! supporting-fact inserts and rule loads (DESIGN.md §11).

use chain_split::differential::check_cache_consistency;
use chain_split::workloads::fuzz::parse_corpus;
use std::fs;
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_replays_identically_with_the_cache_on() {
    let files = corpus_files();
    assert!(
        files.len() >= 10,
        "regression corpus unexpectedly small: {} programs",
        files.len()
    );
    for path in files {
        let name: &'static str = Box::leak(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()
                .into_boxed_str(),
        );
        let text = fs::read_to_string(&path).unwrap();
        let case = parse_corpus(name, &text);
        if let Err(m) = check_cache_consistency(&case, &[1, 4]) {
            panic!("corpus {name}: {m}");
        }
    }
}
