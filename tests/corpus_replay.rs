//! Fast, non-random replay of the minimized regression corpus.
//!
//! Each `tests/corpus/*.dl` file is a program the fuzzer (or a hand
//! analysis) once minimized, with a `% query:` header naming the goal and
//! an optional `% strategies:` header restricting which evaluation family
//! applies. Every program replays through the same differential oracle
//! the fuzzer uses: identical sorted answers across all applicable
//! strategies, and bit-identical outcomes (answers *and* work counters)
//! across thread counts 1, 2, 4 and 8.

use chain_split::differential::check_case;
use chain_split::workloads::fuzz::parse_corpus;
use std::fs;
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_replays_identically_across_strategies_and_threads() {
    let files = corpus_files();
    assert!(
        files.len() >= 10,
        "regression corpus unexpectedly small: {} programs",
        files.len()
    );
    for path in files {
        let name: &'static str = Box::leak(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()
                .into_boxed_str(),
        );
        let text = fs::read_to_string(&path).unwrap();
        let case = parse_corpus(name, &text);
        if let Err(m) = check_case(&case, &[1, 2, 4, 8]) {
            panic!("corpus {name}: {m}");
        }
    }
}

#[test]
fn corpus_programs_have_answers_where_expected() {
    // Spot-check a few known answer counts so a corpus file that silently
    // stops producing answers (rather than disagreeing) is still caught.
    let expect = [
        ("sg_siblings.dl", 2usize), // cain<->abel via sibling, eve via parents
        ("path_line.dl", 4),        // n1..n4
        ("append_splits.dl", 4),    // |list| + 1 splits
        ("travel_fare.dl", 1),      // only f1+f2 fits the budget
        ("sg_no_answers.dl", 0),
    ];
    for (file, want) in expect {
        let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests/corpus", file]
            .iter()
            .collect();
        let text = fs::read_to_string(&path).unwrap();
        let case = parse_corpus(Box::leak(file.to_string().into_boxed_str()), &text);
        let got = check_case(&case, &[1]).unwrap_or_else(|m| panic!("{file}: {m}"));
        assert_eq!(got, want, "{file}: reference answer count");
    }
}
