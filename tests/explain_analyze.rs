//! Integration tests for the EXPLAIN ANALYZE observability layer:
//! `DeductiveDb::explain_analyze` must report per-round metrics and phase
//! timings for every strategy, and the per-round deltas must be
//! consistent with the totals the evaluators already report.

use chain_split::core::{DeductiveDb, EvalMetrics, Strategy as Method};
use chain_split::workloads::fixtures;

const ALL_STRATEGIES: [Method; 8] = [
    Method::Auto,
    Method::TopDown,
    Method::Naive,
    Method::SemiNaive,
    Method::Magic,
    Method::SupplementaryMagic,
    Method::ChainSplitMagic,
    Method::Tabled,
];

fn family_db() -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(fixtures::SG).unwrap();
    db.load(
        "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
         parent(h1, g1). parent(h2, g2).
         sibling(c1, c2). sibling(c2, c1).",
    )
    .unwrap();
    db
}

#[test]
fn all_strategies_report_rounds_and_totals() {
    for strat in ALL_STRATEGIES {
        let mut db = family_db();
        let m: EvalMetrics = db
            .explain_analyze("sg(h1, Y)", strat)
            .unwrap_or_else(|e| panic!("{strat}: {e}"));
        assert_eq!(m.strategy, strat.to_string());
        assert_eq!(m.answers, 1, "{strat}");
        assert!(!m.rounds.is_empty(), "{strat}: no rounds");
        // Round counters must sum to the totals for every monotone field.
        let probed: usize = m.rounds.iter().map(|r| r.counters.probed).sum();
        let matched: usize = m.rounds.iter().map(|r| r.counters.matched).sum();
        assert_eq!(probed, m.totals.probed, "{strat}: probed mismatch");
        assert_eq!(matched, m.totals.matched, "{strat}: matched mismatch");
        // Under the frontier executor `probed` counts physical work (one
        // select per distinct probe key), while `matched` stays logical
        // (one per surviving substitution-tuple pair) — so matched may
        // legitimately exceed probed on key-repeating frontiers, and the
        // old `matched <= probed` invariant is gone. Both must still be
        // live counters on a recursive workload.
        assert!(probed > 0, "{strat}: no probes recorded");
        // Phase timings are populated (non-negative, total covers them).
        assert!(m.phases.total_ms() >= m.phases.fixpoint_ms, "{strat}");
        // Display renders the header, phases line and one row per round.
        let text = m.to_string();
        assert!(text.contains("phases:"), "{strat}: {text}");
        assert!(
            text.lines().count() >= 5 + m.rounds.len(),
            "{strat}: {text}"
        );
    }
}

#[test]
fn bottom_up_round_deltas_sum_to_derived_facts() {
    for strat in [Method::SemiNaive, Method::Magic, Method::ChainSplitMagic] {
        let mut db = family_db();
        let m = db.explain_analyze("sg(h1, Y)", strat).unwrap();
        assert!(m.rounds.len() > 1, "{strat}: expected multiple rounds");
        // Each round's delta is the number of new tuples that round; the
        // final round is the empty round that detects the fixpoint.
        assert_eq!(m.rounds.last().unwrap().delta, 0, "{strat}");
        let delta_sum: usize = m.rounds.iter().map(|r| r.delta).sum();
        assert_eq!(delta_sum, m.delta_total(), "{strat}");
        assert!(delta_sum > 0, "{strat}: no facts derived");
    }
}

#[test]
fn magic_strategies_report_magic_phase_work() {
    let mut db = family_db();
    let m = db.explain_analyze("sg(h1, Y)", Method::Magic).unwrap();
    assert!(m.totals.magic_facts > 0);
    // The magic transform is timed as compile work and answer extraction
    // is separated from the fixpoint.
    assert!(m.phases.total_ms() > 0.0);
}

#[test]
fn chain_split_buffered_rounds_track_levels() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::APPEND).unwrap();
    let m = db
        .explain_analyze("append(U, V, [1, 2, 3])", Method::Auto)
        .unwrap();
    assert_eq!(m.answers, 4);
    // The buffered executor records one round per chain level (plus a
    // final residual round for work outside the sweep); the buffered
    // peak bounds each level's delta.
    assert!(m.rounds.len() >= 2);
    for r in &m.rounds[..m.rounds.len() - 1] {
        assert!(r.delta <= m.totals.buffered_peak, "level {}", r.round);
    }
}

#[test]
fn repeated_runs_agree_on_logical_metrics() {
    // Wall times vary run to run; the logical metrics must not.
    let run = || {
        let mut db = family_db();
        db.explain_analyze("sg(h1, Y)", Method::SemiNaive).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.totals.probed, b.totals.probed);
    assert_eq!(a.totals.matched, b.totals.matched);
    assert_eq!(a.totals.derived, b.totals.derived);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.delta, rb.delta, "round {}", ra.round);
    }
}
