//! Fault-injection replays (`--features fault-inject` builds only).
//!
//! Every corpus program is disrupted — deterministic injected faults
//! (probe-time errors, forced cancellations, latency) plus a tight
//! deadline — and must satisfy the crash-consistency invariant: once the
//! disruption is lifted, the *same* database handle re-runs the query to
//! the correct, bit-identical outcome. A separate test opts into panic
//! faults to verify a worker panic poisons only the query it hit.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex.

#![cfg(feature = "fault-inject")]

use chain_split::core::{DeductiveDb, Strategy};
use chain_split::differential::{check_crash_consistency, Disruption};
use chain_split::governor::faults::{self, FaultPlan};
use chain_split::workloads::fuzz::parse_corpus;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this file: faults arm process-wide.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_replays_crash_consistently_under_faults() {
    let _guard = fault_guard();
    for (i, path) in corpus_files().into_iter().enumerate() {
        let name: &'static str = Box::leak(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()
                .into_boxed_str(),
        );
        let text = fs::read_to_string(&path).unwrap();
        let case = parse_corpus(name, &text);
        // A 2% per-point rate fires within ~50 injection points — early
        // enough to disrupt even the small corpus fixpoints — and the
        // 50 ms deadline covers queries too short to reach a fault.
        let disruption = Disruption {
            fault_rate_ppm: 20_000,
            fault_seed: 0xFACE ^ i as u64,
            timeout_ms: Some(50),
        };
        if let Err(m) = check_crash_consistency(&case, &[1, 4], &disruption) {
            panic!("corpus {name}: {m}");
        }
    }
    assert!(!faults::is_armed(), "oracle must disarm after each run");
}

#[test]
fn panic_fault_poisons_only_the_query_and_db_stays_usable() {
    let _guard = fault_guard();
    let text = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/path_cycle.dl"
    ))
    .unwrap();
    let case = parse_corpus("path_cycle.dl", &text);
    let mut db = DeductiveDb::new();
    db.load(&case.program()).unwrap();
    db.set_threads(4);
    let clean = db.query_with(&case.query, Strategy::SemiNaive).unwrap();
    let reference: Vec<String> = clean.answers.iter().map(|a| a.to_string()).collect();

    // Every injection point fires, panics included. A panic inside a pool
    // worker surfaces as EvalError::WorkerPanicked; one on the calling
    // thread unwinds to the catch below. Either way it must poison only
    // this query.
    faults::arm(FaultPlan {
        panic: true,
        ..FaultPlan::new(7, 1_000_000)
    });
    let disrupted = catch_unwind(AssertUnwindSafe(|| {
        db.query_with(&case.query, Strategy::SemiNaive)
    }));
    faults::disarm();
    assert!(
        faults::points_visited() > 0,
        "the disrupted run must reach at least one injection point"
    );
    // Whatever happened — panic, WorkerPanicked, fault trip — is fine;
    // what matters is the db still answers correctly afterwards.
    drop(disrupted);
    let again = db.query_with(&case.query, Strategy::SemiNaive).unwrap();
    assert!(again.trip.is_none());
    let after: Vec<String> = again.answers.iter().map(|a| a.to_string()).collect();
    assert_eq!(after, reference);
}

#[test]
fn worker_panic_surfaces_with_partition_and_message_then_pool_recovers() {
    // Containment without faults: drive the pool the way the fixpoint
    // does and check the panic report carries the partition index and
    // message, then the same handle keeps working.
    let pool = chainsplit_par::Pool::new(4);
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
        .map(|i| {
            Box::new(move || {
                if i == 3 {
                    panic!("partition {i} hit a poisoned tuple");
                }
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let chainsplit_par::PoolError::WorkerPanicked { task, message } = pool.run(tasks).unwrap_err();
    assert_eq!(task, 3);
    assert_eq!(message, "partition 3 hit a poisoned tuple");
    let ok = pool.run((0..8usize).map(|i| move || i).collect::<Vec<_>>());
    assert_eq!(ok.unwrap(), (0..8).collect::<Vec<_>>());
}
