//! The paper's worked examples, replayed end to end through the public
//! API. Each test cites the example it reproduces.

use chain_split::core::{DeductiveDb, Strategy};
use chain_split::workloads::fixtures;

fn db_with(src: &str) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(src).unwrap();
    db
}

fn answers(db: &mut DeductiveDb, q: &str) -> Vec<String> {
    let mut v: Vec<String> = db
        .query(q)
        .unwrap_or_else(|e| panic!("query {q}: {e}"))
        .iter()
        .map(|a| a.to_string())
        .collect();
    v.sort();
    v
}

/// Example 1.1: sg compiles into two chains.
#[test]
fn example_1_1_sg_compiles_to_two_chains() {
    let mut db = db_with(fixtures::SG);
    db.load("parent(a, p). sibling(p, p).").unwrap();
    let sys = db.system();
    let rec = &sys.compiled[&chain_split::logic::Pred::new("sg", 2)];
    assert_eq!(rec.n_chains(), 2);
    assert_eq!(rec.exit_rules.len(), 1);
}

/// Example 1.2: scsg's same_country links the parents into ONE chain
/// generating path of three predicates.
#[test]
fn example_1_2_scsg_is_single_chain() {
    let mut db = db_with(fixtures::SCSG);
    db.load("parent(a, p). sibling(p, p). same_country(p, p).")
        .unwrap();
    let sys = db.system();
    let rec = &sys.compiled[&chain_split::logic::Pred::new("scsg", 2)];
    assert_eq!(rec.n_chains(), 1);
    assert_eq!(rec.chains[0].atoms.len(), 3);
}

/// §2.2: the append chain splits under ^ffb; the element variable is
/// buffered.
#[test]
fn section_2_2_append_split() {
    let mut db = db_with(fixtures::APPEND);
    let e = db.explain("append(U, V, [1, 2, 3])").unwrap();
    assert!(e.contains("split: yes"), "{e}");
    assert!(e.contains("buffered variables: [X]"), "{e}");
    assert_eq!(
        answers(&mut db, "append(U, V, [1, 2, 3])"),
        [
            "U = [1, 2, 3], V = []",
            "U = [1, 2], V = [3]",
            "U = [1], V = [2, 3]",
            "U = [], V = [1, 2, 3]",
        ]
    );
}

/// §4.1, the full worked trace: ?- isort([5,7,1], Ys) = [1,5,7], and every
/// intermediate insert call from the paper's narration.
#[test]
fn example_4_1_isort_trace() {
    let mut db = db_with(fixtures::ISORT);
    assert_eq!(answers(&mut db, "isort([5, 7, 1], Ys)"), ["Ys = [1, 5, 7]"]);
    // "insert(1, [], Zs0) results in Zs0 = [1]"
    assert_eq!(answers(&mut db, "insert(1, [], Zs)"), ["Zs = [1]"]);
    // "insert(7, [1], Zs) leads to Zs = [1, 7]"
    assert_eq!(answers(&mut db, "insert(7, [1], Zs)"), ["Zs = [1, 7]"]);
    // "insert(5, [1, 7], Ys) … leads to the final answer Ys = [1, 5, 7]"
    assert_eq!(
        answers(&mut db, "insert(5, [1, 7], Ys)"),
        ["Ys = [1, 5, 7]"]
    );
    // And the inner call it makes: "insert(5, [7], Zs)".
    assert_eq!(answers(&mut db, "insert(5, [7], Zs)"), ["Zs = [5, 7]"]);
}

/// §4.2, the full worked trace: ?- qsort([4,9,5], Ys) = [4,5,9] with the
/// partition sub-results from the paper.
#[test]
fn example_4_2_qsort_trace() {
    let mut db = db_with(fixtures::QSORT);
    assert_eq!(answers(&mut db, "qsort([4, 9, 5], Ys)"), ["Ys = [4, 5, 9]"]);
    // "partition([9,5], 4, Littles, Bigs)" derives Littles=[], Bigs=[9,5].
    assert_eq!(
        answers(&mut db, "partition([9, 5], 4, Ls, Bs)"),
        ["Ls = [], Bs = [9, 5]"]
    );
    // "partition([5], 4, XLs, Bs)": XLs=[], Bs=[5].
    assert_eq!(
        answers(&mut db, "partition([5], 4, Ls, Bs)"),
        ["Ls = [], Bs = [5]"]
    );
    // "qsort([9,5], Bs) leads to Bs = [5,9]".
    assert_eq!(answers(&mut db, "qsort([9, 5], Bs)"), ["Bs = [5, 9]"]);
    // "append([], [4,5,9], Ys) leads to Ys = [4,5,9]".
    assert_eq!(
        answers(&mut db, "append([], [4, 5, 9], Ys)"),
        ["Ys = [4, 5, 9]"]
    );
}

/// §3.3: travel with a pushed fare constraint.
#[test]
fn section_3_3_travel_constraints() {
    let mut db = db_with(fixtures::TRAVEL);
    db.load(
        "flight(1, vancouver, 800, calgary, 1000, 200).
         flight(2, calgary, 1100, toronto, 1500, 300).
         flight(3, toronto, 1600, ottawa, 1700, 100).
         flight(4, vancouver, 900, toronto, 1500, 450).
         flight(5, vancouver, 800, ottawa, 1800, 700).",
    )
    .unwrap();
    let all = answers(&mut db, "travel(L, vancouver, DT, ottawa, AT, F)");
    assert_eq!(all.len(), 3, "{all:?}"); // [1,2,3], [4,3], [5]
    let cheap = answers(&mut db, "travel(L, vancouver, DT, ottawa, AT, F), F <= 600");
    assert_eq!(cheap.len(), 2, "{cheap:?}");
    assert!(cheap
        .iter()
        .any(|a| a.contains("L = [1, 2, 3]") && a.contains("F = 600")));
    assert!(cheap
        .iter()
        .any(|a| a.contains("L = [4, 3]") && a.contains("F = 550")));
}

/// sg over the family data: all strategies agree (the cross-method oracle
/// the whole harness leans on).
#[test]
fn sg_all_strategies_agree() {
    let mut db = db_with(fixtures::SG);
    db.load(
        "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
         parent(h1, g1). parent(h2, g2).
         sibling(c1, c2). sibling(c2, c1). sibling(p1, p1).",
    )
    .unwrap();
    let mut reference: Option<Vec<String>> = None;
    for strat in [
        Strategy::Auto,
        Strategy::TopDown,
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::ChainSplitMagic,
        Strategy::Tabled,
    ] {
        let o = db.query_with("sg(h1, Y)", strat).unwrap();
        let mut v: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
        v.sort();
        match &reference {
            None => reference = Some(v),
            Some(r) => assert_eq!(&v, r, "strategy {strat}"),
        }
    }
    assert_eq!(reference.unwrap(), ["Y = h1", "Y = h2"]);
}

/// The compiled form (1.17) of append: one chain, two connected cons
/// predicates, invariant middle argument.
#[test]
fn compiled_form_1_17_append() {
    let mut db = db_with(fixtures::APPEND);
    let sys = db.system();
    let rec = &sys.compiled[&chain_split::logic::Pred::new("append", 3)];
    assert_eq!(rec.n_chains(), 1);
    assert_eq!(rec.chains[0].atoms.len(), 2);
    assert!(rec.chains[0]
        .atoms
        .iter()
        .all(|a| a.pred.name.as_str() == "cons"));
    assert_eq!(rec.invariant_positions, vec![1]);
}

/// Mixed-mode append queries (the admissibility matrix in action).
#[test]
fn append_mode_matrix() {
    let mut db = db_with(fixtures::APPEND);
    assert_eq!(
        answers(&mut db, "append([1], [2, 3], W)"),
        ["W = [1, 2, 3]"]
    );
    assert_eq!(
        answers(&mut db, "append(U, [3], [1, 2, 3])"),
        ["U = [1, 2]"]
    );
    assert_eq!(
        answers(&mut db, "append([1], V, [1, 2, 3])"),
        ["V = [2, 3]"]
    );
    assert_eq!(answers(&mut db, "append([1], [2], [1, 2])"), ["true"]);
    assert_eq!(
        answers(&mut db, "append([2], [1], [1, 2])"),
        Vec::<String>::new()
    );
    // Inadmissible adornment: reported as an error, not a hang.
    assert!(db.query("append(U, [3], W)").is_err());
}

/// The LogicBase report's stress program [7]: n-queens runs through every
/// recursion class the engine supports (functional linear `range`/`select`,
/// linear-over-linear `perm`, builtin-heavy `safe`).
#[test]
fn logicbase_nqueens() {
    let mut db = DeductiveDb::new();
    db.load(
        "queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).
         range(H, H, [H]).
         range(L, H, [L | T]) :- L < H, plus(L, 1, L1), range(L1, H, T).
         perm([], []).
         perm(Xs, [X | Ys]) :- select(X, Xs, Rest), perm(Rest, Ys).
         select(X, [X | Xs], Xs).
         select(X, [Y | Ys], [Y | Zs]) :- select(X, Ys, Zs).
         safe([]).
         safe([Q | Qs]) :- no_attack(Q, Qs, 1), safe(Qs).
         no_attack(Q, [], D).
         no_attack(Q, [Q1 | Qs], D) :- Q \\= Q1, minus(Q, Q1, Diff), abs(Diff, AD),
             AD \\= D, plus(D, 1, D1), no_attack(Q, Qs, D1).",
    )
    .unwrap();
    assert_eq!(db.query("queens(4, Qs)").unwrap().len(), 2);
    assert!(db.query("queens(3, Qs)").unwrap().is_empty());
    assert_eq!(db.query("queens(1, Qs)").unwrap().len(), 1);
    // The helper recursions also answer standalone queries.
    assert_eq!(db.query("range(1, 4, Ns)").unwrap().len(), 1);
    assert_eq!(db.query("perm([1, 2, 3], P)").unwrap().len(), 6);
    assert_eq!(db.query("select(X, [1, 2, 3], Rest)").unwrap().len(), 3);
}
