//! Integration tests for the cost-based join planner (DESIGN.md §14):
//! the statistics-driven ordering must beat the syntactic order on
//! skewed data without changing answers, and the per-adornment plan
//! cache must invalidate on EDB changes and replan when a delta
//! relation crosses a size band mid-fixpoint.

use chain_split::core::{DeductiveDb, Strategy};
use chain_split::logic::{Atom, Term};
use chain_split::workloads::{fixtures, star_join_facts};

fn star_db(hubs: usize, spokes: usize, fanout: usize) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(fixtures::STAR_JOIN).unwrap();
    for f in star_join_facts(hubs, spokes, fanout) {
        db.add_fact(f).unwrap();
    }
    db
}

fn sorted_answers(db: &mut DeductiveDb, q: &str) -> Vec<String> {
    let mut v: Vec<String> = db
        .query_with(q, Strategy::SemiNaive)
        .unwrap()
        .answers
        .iter()
        .map(|a| a.to_string())
        .collect();
    v.sort();
    v
}

/// On the skewed star join the planner puts the selective `hub` relation
/// first (the arity heuristic cannot — every atom is binary), cutting
/// `probed` by at least the 5x the acceptance gate demands, with
/// identical answers.
#[test]
fn skewed_star_join_planner_wins_probed() {
    let mut on = star_db(2, 32, 4);
    let mut off = star_db(2, 32, 4);
    off.set_plan_enabled(false);

    let out_on = on.query_with("q(A, B, C, H)", Strategy::SemiNaive).unwrap();
    let out_off = off
        .query_with("q(A, B, C, H)", Strategy::SemiNaive)
        .unwrap();

    let mut a_on: Vec<String> = out_on.answers.iter().map(|a| a.to_string()).collect();
    let mut a_off: Vec<String> = out_off.answers.iter().map(|a| a.to_string()).collect();
    a_on.sort();
    a_off.sort();
    assert_eq!(a_on, a_off, "planner changed the answers");
    assert!(!a_on.is_empty());

    let (p_on, p_off) = (out_on.counters.probed, out_off.counters.probed);
    assert!(
        p_off >= 5 * p_on,
        "planner-on probed {p_on} must be >=5x under planner-off probed {p_off}"
    );
    assert!(out_on.counters.plan_misses >= 1, "first query plans fresh");
    assert_eq!(
        out_off.counters.plan_misses, 0,
        "disabled planner never plans"
    );
}

/// The plan cache serves repeats and is invalidated by EDB epoch bumps:
/// a second identical query hits, an insert into a supporting relation
/// forces a replan, and so does a retraction.
#[test]
fn plan_cache_invalidates_on_insert_and_retract() {
    let mut db = star_db(2, 8, 4);
    let q = "q(A, B, C, H)";

    let first = sorted_answers(&mut db, q);
    let s1 = db.plan_stats();
    assert!(s1.misses >= 1, "first query must miss the plan cache");

    let again = sorted_answers(&mut db, q);
    assert_eq!(first, again);
    let s2 = db.plan_stats();
    assert!(s2.hits > s1.hits, "repeat query must hit the plan cache");
    assert_eq!(s2.misses, s1.misses, "repeat query must not replan");

    // Insert: a new hub value doubles the hub answers and bumps the
    // epoch, so the cached plan is stale and must be recomputed.
    db.add_fact(Atom::new("hub", vec![Term::sym("x5"), Term::sym("h5")]))
        .unwrap();
    let grown = sorted_answers(&mut db, q);
    assert!(grown.len() > first.len(), "new hub fact adds answers");
    let s3 = db.plan_stats();
    assert!(
        s3.replans > s2.replans,
        "insert must invalidate the cached plan (replans {} -> {})",
        s2.replans,
        s3.replans
    );

    // Retract: back to the original answers, through another replan.
    db.retract_fact(&Atom::new("hub", vec![Term::sym("x5"), Term::sym("h5")]))
        .expect("retract succeeds");
    let shrunk = sorted_answers(&mut db, q);
    assert_eq!(shrunk, first);
    let s4 = db.plan_stats();
    assert!(
        s4.replans > s3.replans,
        "retract must invalidate the cached plan (replans {} -> {})",
        s3.replans,
        s4.replans
    );
}

/// Mid-fixpoint replanning: on a fan graph the transitive-closure delta
/// shrinks from 65 tuples (round 1) to 1 (round 2), crossing a 4x size
/// band, so one query replans the recursive body while it runs.
#[test]
fn delta_band_replans_mid_fixpoint() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::PATH).unwrap();
    let e = |a: &str, b: &str| Atom::new("edge", vec![Term::sym(a), Term::sym(b)]);
    for i in 0..64 {
        db.add_fact(e("a", &format!("b{i}"))).unwrap();
    }
    db.add_fact(e("b0", "c")).unwrap();

    let out = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
    assert_eq!(out.answers.len(), 65);
    assert!(
        out.counters.plan_replans >= 1,
        "delta band crossing must replan mid-fixpoint (replans {})",
        out.counters.plan_replans
    );

    // The band-keyed replanning stays deterministic across thread counts.
    let run = |threads: usize| {
        let mut db = DeductiveDb::new();
        db.set_threads(threads);
        db.load(fixtures::PATH).unwrap();
        for i in 0..64 {
            db.add_fact(e("a", &format!("b{i}"))).unwrap();
        }
        db.add_fact(e("b0", "c")).unwrap();
        let o = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        (
            o.answers.len(),
            o.counters.plan_hits,
            o.counters.plan_misses,
            o.counters.plan_replans,
        )
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(4));
}
