//! Provenance replay over the minimized regression corpus.
//!
//! Every `tests/corpus/*.dl` program replays through the lineage oracle
//! (`differential::check_provenance`): with witness recording on, every
//! recorded witness must ground-instantiate its rule with all body atoms
//! themselves derivable, and the witness snapshot must be bit-identical
//! at threads 1 and 4. A second pass asserts the recording gate is free
//! when off: a query that runs after a provenance session reports
//! answers *and* work counters bit-identical to one that ran before it.
//!
//! Also pins the acceptance example for `:why`: on a chain program the
//! proof tree's *shape* differs between chain-split and semi-naive
//! evaluation (exit-through-helper vs level-by-level composition) while
//! the proof *leaves* — the EDB facts the answer rests on — agree.

use chain_split::core::{DeductiveDb, Strategy};
use chain_split::differential::{check_provenance, strategies_for};
use chain_split::workloads::fuzz::{parse_corpus, FuzzCase};
use std::fs;
use std::path::PathBuf;

fn corpus_cases() -> Vec<FuzzCase> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let name: &'static str = Box::leak(
                path.file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned()
                    .into_boxed_str(),
            );
            let text = fs::read_to_string(&path).unwrap();
            parse_corpus(name, &text)
        })
        .collect()
}

#[test]
fn corpus_witnesses_are_valid_and_thread_identical() {
    for case in corpus_cases() {
        if let Err(m) = check_provenance(&case, &[1, 4]) {
            panic!("corpus {}: {m}", case.shape);
        }
    }
}

#[test]
fn recording_session_leaves_counters_bit_identical() {
    let run = |case: &FuzzCase, strategy: Strategy, threads: usize| {
        let mut db = DeductiveDb::new();
        db.load(&case.program()).unwrap();
        db.set_threads(threads);
        db.solve_options.max_levels = 200;
        db.query_with(&case.query, strategy)
            .map(|o| {
                let mut answers: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
                answers.sort();
                (answers, o.counters)
            })
            .map_err(|e| e.to_string())
    };
    for case in corpus_cases() {
        for &threads in &[1usize, 4] {
            for &strategy in strategies_for(&case) {
                // Reference: no provenance session has ever run.
                let before = run(&case, strategy, threads);
                // A full recording session…
                {
                    let _session = chain_split::provenance::exclusive();
                    chain_split::provenance::clear();
                    chain_split::provenance::enable();
                    let with_recording = run(&case, strategy, threads);
                    chain_split::provenance::disable();
                    chain_split::provenance::clear();
                    // …never touches the work counters, even while on.
                    assert_eq!(
                        with_recording, before,
                        "{} {strategy} threads={threads}: recording changed the outcome",
                        case.shape
                    );
                }
                // …and leaves nothing behind once off.
                let after = run(&case, strategy, threads);
                assert_eq!(
                    after, before,
                    "{} {strategy} threads={threads}: outcome differs after a recording session",
                    case.shape
                );
            }
        }
    }
}

/// The acceptance example: a transitive-closure chain (the paper's
/// canonical chain recursion) with a multi-hop helper exit. Chain-split
/// justifies `path(a, t)` through the helper exit it solved during the
/// up sweep; semi-naive reaches the same tuple first through round-order
/// composition of the recursive rule. Different proof shapes, same EDB
/// leaves.
const SHAPE_PROGRAM: &str = "\
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
path(X, Y) :- three_hop(X, Y).
hop2(X, Y) :- edge(X, Z), edge(Z, Y).
three_hop(X, Y) :- hop2(X, Z), edge(Z, Y).
edge(a, b). edge(b, c). edge(c, t).";

fn proof_profile(strategy: Strategy) -> (String, Vec<String>) {
    let mut db = DeductiveDb::new();
    db.load(SHAPE_PROGRAM).unwrap();
    let report = db.explain_answer_with("path(a, t)", strategy).unwrap();
    assert_eq!(report.proofs.len(), 1, "{strategy}: one ground answer");
    let proof = &report.proofs[0];
    let mut leaves: Vec<String> = proof.leaves().iter().map(|a| a.to_string()).collect();
    leaves.sort();
    leaves.dedup();
    (proof.shape(), leaves)
}

#[test]
fn chain_split_and_semi_naive_proof_shapes_differ_with_agreeing_leaves() {
    let (split_shape, split_leaves) = proof_profile(Strategy::ChainSplit);
    let (sn_shape, sn_leaves) = proof_profile(Strategy::SemiNaive);
    assert_ne!(
        split_shape, sn_shape,
        "chain-split and semi-naive should justify path(a, t) differently"
    );
    assert_eq!(
        split_leaves, sn_leaves,
        "both proofs must rest on the same EDB facts"
    );
    assert_eq!(
        split_leaves,
        vec!["edge(a, b)", "edge(b, c)", "edge(c, t)"],
        "the leaves are exactly the chain's edges"
    );
}

#[test]
fn provenance_arena_bytes_count_against_the_byte_budget() {
    // Witness recording charges the arena against the governor's byte
    // currency, so a budget that exactly fits the plain query must trip
    // once recording is on.
    let trips = |max_bytes: u64, record: bool| {
        let mut db = DeductiveDb::new();
        db.load(SHAPE_PROGRAM).unwrap();
        db.set_budget(chain_split::governor::Budget {
            max_bytes_est: Some(max_bytes),
            ..chain_split::governor::Budget::default()
        });
        if record {
            chain_split::provenance::clear();
            chain_split::provenance::enable();
        }
        let outcome = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        if record {
            chain_split::provenance::disable();
            chain_split::provenance::clear();
        }
        outcome.trip.is_some()
    };
    let _session = chain_split::provenance::exclusive();
    // Measure the arena an unconstrained recording run accumulates.
    chain_split::provenance::clear();
    chain_split::provenance::enable();
    let mut db = DeductiveDb::new();
    db.load(SHAPE_PROGRAM).unwrap();
    db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
    let arena = chain_split::provenance::arena_bytes();
    chain_split::provenance::disable();
    chain_split::provenance::clear();
    assert!(arena > 0, "recording must have charged arena bytes");
    // Bisect the smallest budget the plain query fits under.
    let (mut lo, mut hi) = (0u64, 1 << 22);
    assert!(!trips(hi, false), "the ceiling must fit the plain query");
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if trips(mid, false) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The plain query fits exactly at `hi`; the recording run's extra
    // arena bytes push the same workload over any budget below
    // `hi + arena`.
    assert!(!trips(hi + arena, false));
    assert!(
        trips(hi + arena - 1, true),
        "arena bytes ({arena}) must count against the byte budget"
    );
}

#[test]
fn cached_answers_stay_explainable() {
    let mut db = DeductiveDb::new();
    db.load(SHAPE_PROGRAM).unwrap();
    db.set_cache_enabled(true);
    let first = db.explain_answer("path(a, t)").unwrap();
    let second = db.explain_answer("path(a, t)").unwrap();
    assert!(!first.cached && second.cached, "second explain must hit");
    assert_eq!(first.render(), second.render(), "replayed lineage agrees");
    assert_eq!(
        first.export_json().to_compact(),
        second.export_json().to_compact()
    );
}
