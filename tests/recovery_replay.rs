//! Crash-recovery replay of the regression corpus.
//!
//! Every fixture — the plain `tests/corpus/*.dl` programs and the
//! scripted `tests/corpus/mutation/*.dl` sessions — runs as a durable
//! session (WAL on, a snapshot mid-script) that is killed and recovered,
//! and the recovered database must be indistinguishable from an
//! in-memory twin that applied exactly the operations the log made
//! durable: same answers, same epoch vector, same cache discipline,
//! same materialization digest, bit-identical at thread counts 1, 2
//! and 4 (DESIGN.md §15).
//!
//! Built with `--features fault-inject` the kill sweeps **every**
//! persistence point the session visits — each WAL frame write, each
//! fsync, both sides of the snapshot rename — with the six fault kinds
//! rotating across points. Without the feature only the clean-kill leg
//! runs (SIGKILL with a synced WAL), which keeps the default test suite
//! hermetic and fast.

use chain_split::differential::check_recovery_sweep;
use chain_split::workloads::fuzz::{parse_corpus, parse_mutation_corpus, MutationScript};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The filesystem fault plan is process-global, so the two sweeps must
/// not interleave under the parallel test runner.
static SWEEP_LOCK: Mutex<()> = Mutex::new(());

fn fixture_files(subdir: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus")).join(subdir);
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("corpus dir must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
}

fn leak_name(path: &std::path::Path) -> &'static str {
    Box::leak(
        path.file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned()
            .into_boxed_str(),
    )
}

/// Plain corpus programs run as op-less durable sessions: the program
/// load is the only logged operation, so the sweep exercises the WAL
/// frames and fsyncs of a single large record.
#[test]
fn corpus_survives_crashes_at_every_failpoint() {
    let _guard = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let files = fixture_files("");
    assert!(
        files.len() >= 10,
        "regression corpus unexpectedly small: {} programs",
        files.len()
    );
    let mut plans = 0u64;
    for path in files {
        let name = leak_name(&path);
        let text = fs::read_to_string(&path).unwrap();
        let script = MutationScript {
            case: parse_corpus(name, &text),
            ops: Vec::new(),
        };
        match check_recovery_sweep(&script, &[1, 2, 4]) {
            Ok(n) => plans += n,
            Err(m) => panic!("corpus {name}: {m}"),
        }
    }
    assert!(plans > 0, "the sweep must exercise at least one crash plan");
}

/// Mutation scripts run their full insert/retract history durably, with
/// a snapshot after the first half — so the sweep covers recovery from
/// a snapshot plus a WAL suffix, torn tails landing on every op, and
/// crashes on both sides of the snapshot rename.
#[test]
fn mutation_corpus_survives_crashes_at_every_failpoint() {
    let _guard = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let files = fixture_files("mutation");
    assert!(
        files.len() >= 5,
        "retraction corpus unexpectedly small: {} scripts",
        files.len()
    );
    let mut plans = 0u64;
    for path in files {
        let name = leak_name(&path);
        let text = fs::read_to_string(&path).unwrap();
        let script = parse_mutation_corpus(name, &text);
        assert!(
            !script.ops.is_empty(),
            "{name}: a mutation fixture must carry `% mutate:` ops"
        );
        match check_recovery_sweep(&script, &[1, 2, 4]) {
            Ok(n) => plans += n,
            Err(m) => panic!("corpus {name}: {m}"),
        }
    }
    assert!(plans > 0, "the sweep must exercise at least one crash plan");
}
