//! Fast, non-random replay of the retraction regression corpus.
//!
//! Each `tests/corpus/mutation/*.dl` file is a scripted mutation session:
//! a `% query:` header naming the goal, `% mutate:` headers listing the
//! insert/retract ops in replay order, then the program. Every script
//! replays through the same retraction-consistency oracle `fuzz --mutate`
//! uses (DESIGN.md §13): a live database (answer cache on, maintained
//! materialization repaired by incremental Delete-and-Rederive) runs the
//! session in lockstep against a twin rebuilt from scratch after every
//! op, and the whole session log — answers, repair outcomes, cache
//! hit/miss behavior, materialization digests — must be bit-identical at
//! thread counts 1, 2 and 4.

use chain_split::differential::check_retract_consistency;
use chain_split::workloads::fuzz::parse_mutation_corpus;
use std::fs;
use std::path::PathBuf;

fn mutation_corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/mutation");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/corpus/mutation must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    files.sort();
    files
}

#[test]
fn mutation_corpus_replays_identically_across_thread_counts() {
    let files = mutation_corpus_files();
    assert!(
        files.len() >= 5,
        "retraction corpus unexpectedly small: {} scripts",
        files.len()
    );
    for path in files {
        let name: &'static str = Box::leak(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()
                .into_boxed_str(),
        );
        let text = fs::read_to_string(&path).unwrap();
        let script = parse_mutation_corpus(name, &text);
        assert!(
            !script.ops.is_empty(),
            "{name}: a mutation fixture must carry `% mutate:` ops"
        );
        assert!(
            script
                .ops
                .iter()
                .any(|op| { matches!(op, chain_split::workloads::fuzz::MutOp::Retract(_)) }),
            "{name}: a mutation fixture must exercise retraction"
        );
        if let Err(m) = check_retract_consistency(&script, &[1, 2, 4]) {
            panic!("corpus {name}: {m}");
        }
    }
}
