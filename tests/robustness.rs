//! Robustness and failure-injection tests: malformed input, inadmissible
//! queries, budget exhaustion, and adversarial data must produce clean
//! errors — never hangs, panics, or wrong answers.

use chain_split::core::{DeductiveDb, SolveOptions, Strategy};
use chain_split::engine::{BottomUpOptions, TopDownOptions};
use chain_split::workloads::fixtures;

#[test]
fn malformed_programs_report_positions() {
    let mut db = DeductiveDb::new();
    for bad in [
        "p(X :- q(X).",
        "p(X) :- .",
        "p(X)",
        ":- q(X).",
        "p(X) :- q(X), .",
        "p([1, 2).",
    ] {
        assert!(db.load(bad).is_err(), "`{bad}` must be rejected");
    }
    // The database stays usable after parse errors.
    db.load("p(1).").unwrap();
    assert_eq!(db.query("p(X)").unwrap().len(), 1);
}

#[test]
fn inadmissible_queries_error_cleanly_under_every_strategy() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::APPEND).unwrap();
    // append^fff is not finitely evaluable anywhere.
    for strat in [
        Strategy::Auto,
        Strategy::ChainSplit,
        Strategy::Naive,
        Strategy::SemiNaive,
    ] {
        assert!(
            db.query_with("append(U, V, W)", strat).is_err(),
            "append^fff must fail under {strat}"
        );
    }
}

#[test]
fn budget_exhaustion_is_an_error_not_a_hang() {
    let mut db = DeductiveDb::new();
    db.load(
        "loop(X) :- loop(X).
         loop(a).",
    )
    .unwrap();
    db.solve_options = SolveOptions {
        max_depth: 100,
        fuel: 10_000,
        max_levels: 100,
        ..SolveOptions::default()
    };
    db.top_down_options = TopDownOptions {
        max_depth: 100,
        fuel: 10_000,
    };
    assert!(db.query_with("loop(a)", Strategy::Auto).is_err());
    assert!(db.query_with("loop(a)", Strategy::TopDown).is_err());
    // Tabled handles the loop fine — that is its whole point.
    assert_eq!(
        db.query_with("loop(a)", Strategy::Tabled)
            .unwrap()
            .answers
            .len(),
        1
    );
}

#[test]
fn cyclic_chain_data_is_guarded() {
    let mut db = DeductiveDb::new();
    db.load(
        "path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).
         edge(a, b). edge(b, a).",
    )
    .unwrap();
    db.solve_options = SolveOptions {
        max_levels: 64,
        ..SolveOptions::default()
    };
    // The level-indexed executor refuses; magic and tabled answer.
    assert!(db.query_with("path(a, Y)", Strategy::ChainSplit).is_err());
    assert_eq!(
        db.query_with("path(a, Y)", Strategy::Magic)
            .unwrap()
            .answers
            .len(),
        2
    );
    assert_eq!(
        db.query_with("path(a, Y)", Strategy::Tabled)
            .unwrap()
            .answers
            .len(),
        2
    );
}

#[test]
fn type_errors_surface() {
    let mut db = DeductiveDb::new();
    db.load("age(bob, thirty). older(X) :- age(X, A), A > 18.")
        .unwrap();
    let err = db.query("older(X)").unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

#[test]
fn division_by_zero_surfaces() {
    let mut db = DeductiveDb::new();
    db.load("bad(Z) :- div(1, 0, Z).").unwrap();
    assert!(db.query("bad(Z)").is_err());
}

#[test]
fn deep_recursion_is_fine_at_scale() {
    // A 400-deep chain (the full TC is Θ(n²) tuples, so keep n modest for
    // debug builds): no stack overflow, right answer count.
    let mut db = DeductiveDb::new();
    db.load(fixtures::PATH).unwrap();
    for e in chain_split::workloads::chain_edges(400) {
        db.add_fact(e);
    }
    db.bottom_up_options = BottomUpOptions::default();
    let o = db
        .query_with("path(n0, Y)", Strategy::ChainSplitMagic)
        .unwrap();
    assert_eq!(o.answers.len(), 400);
    let o = db.query_with("path(n0, Y)", Strategy::ChainSplit).unwrap();
    assert_eq!(o.answers.len(), 400);
}

#[test]
fn empty_database_and_unknown_predicates() {
    let mut db = DeductiveDb::new();
    db.load("p(X) :- no_such_relation(X).").unwrap();
    assert!(db.query("p(X)").unwrap().is_empty());
    assert!(db.query("completely_unknown(X)").unwrap().is_empty());
}

#[test]
fn same_name_different_arity_coexist() {
    let mut db = DeductiveDb::new();
    db.load(
        "p(1). p(1, 2).
         q(X) :- p(X).
         r(X, Y) :- p(X, Y).",
    )
    .unwrap();
    assert_eq!(db.query("q(X)").unwrap().len(), 1);
    assert_eq!(db.query("r(X, Y)").unwrap().len(), 1);
}

#[test]
fn pruning_never_loses_answers_on_adversarial_fares() {
    // Zero-fare cycles of flights would make naive pruning tempting and
    // wrong; the analysis only pushes when soundness is provable, and the
    // residual filter guarantees the final answers either way.
    let mut db = DeductiveDb::new();
    db.load(fixtures::TRAVEL).unwrap();
    db.load(
        "flight(1, x, 100, y, 110, 0).
         flight(2, y, 200, z, 210, 500).
         flight(3, x, 100, z, 250, 600).",
    )
    .unwrap();
    let all = db.query("travel(L, x, DT, z, AT, F), F <= 500").unwrap();
    assert_eq!(all.len(), 1, "{all:?}"); // [1, 2] with F = 500
    assert!(all[0].to_string().contains("[1, 2]"));
}
