//! Robustness and failure-injection tests: malformed input, inadmissible
//! queries, budget exhaustion, and adversarial data must produce clean
//! errors — never hangs, panics, or wrong answers.

use chain_split::core::{DeductiveDb, QueryOutcome, SolveOptions, Strategy};
use chain_split::engine::{BottomUpOptions, TopDownOptions};
use chain_split::governor::{Budget, Resource};
use chain_split::workloads::fixtures;
use std::time::{Duration, Instant};

#[test]
fn malformed_programs_report_positions() {
    let mut db = DeductiveDb::new();
    for bad in [
        "p(X :- q(X).",
        "p(X) :- .",
        "p(X)",
        ":- q(X).",
        "p(X) :- q(X), .",
        "p([1, 2).",
    ] {
        assert!(db.load(bad).is_err(), "`{bad}` must be rejected");
    }
    // The database stays usable after parse errors.
    db.load("p(1).").unwrap();
    assert_eq!(db.query("p(X)").unwrap().len(), 1);
}

#[test]
fn inadmissible_queries_error_cleanly_under_every_strategy() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::APPEND).unwrap();
    // append^fff is not finitely evaluable anywhere.
    for strat in [
        Strategy::Auto,
        Strategy::ChainSplit,
        Strategy::Naive,
        Strategy::SemiNaive,
    ] {
        assert!(
            db.query_with("append(U, V, W)", strat).is_err(),
            "append^fff must fail under {strat}"
        );
    }
}

#[test]
fn budget_exhaustion_is_an_error_not_a_hang() {
    let mut db = DeductiveDb::new();
    db.load(
        "loop(X) :- loop(X).
         loop(a).",
    )
    .unwrap();
    db.solve_options = SolveOptions {
        max_depth: 100,
        fuel: 10_000,
        max_levels: 100,
        ..SolveOptions::default()
    };
    db.top_down_options = TopDownOptions {
        max_depth: 100,
        fuel: 10_000,
        ..TopDownOptions::default()
    };
    assert!(db.query_with("loop(a)", Strategy::Auto).is_err());
    assert!(db.query_with("loop(a)", Strategy::TopDown).is_err());
    // Tabled handles the loop fine — that is its whole point.
    assert_eq!(
        db.query_with("loop(a)", Strategy::Tabled)
            .unwrap()
            .answers
            .len(),
        1
    );
}

#[test]
fn cyclic_chain_data_is_guarded() {
    let mut db = DeductiveDb::new();
    db.load(
        "path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).
         edge(a, b). edge(b, a).",
    )
    .unwrap();
    db.solve_options = SolveOptions {
        max_levels: 64,
        ..SolveOptions::default()
    };
    // The level-indexed executor refuses; magic and tabled answer.
    assert!(db.query_with("path(a, Y)", Strategy::ChainSplit).is_err());
    assert_eq!(
        db.query_with("path(a, Y)", Strategy::Magic)
            .unwrap()
            .answers
            .len(),
        2
    );
    assert_eq!(
        db.query_with("path(a, Y)", Strategy::Tabled)
            .unwrap()
            .answers
            .len(),
        2
    );
}

#[test]
fn type_errors_surface() {
    let mut db = DeductiveDb::new();
    db.load("age(bob, thirty). older(X) :- age(X, A), A > 18.")
        .unwrap();
    let err = db.query("older(X)").unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

#[test]
fn division_by_zero_surfaces() {
    let mut db = DeductiveDb::new();
    db.load("bad(Z) :- div(1, 0, Z).").unwrap();
    assert!(db.query("bad(Z)").is_err());
}

#[test]
fn deep_recursion_is_fine_at_scale() {
    // A 400-deep chain (the full TC is Θ(n²) tuples, so keep n modest for
    // debug builds): no stack overflow, right answer count.
    let mut db = DeductiveDb::new();
    db.load(fixtures::PATH).unwrap();
    for e in chain_split::workloads::chain_edges(400) {
        db.add_fact(e).unwrap();
    }
    db.bottom_up_options = BottomUpOptions::default();
    let o = db
        .query_with("path(n0, Y)", Strategy::ChainSplitMagic)
        .unwrap();
    assert_eq!(o.answers.len(), 400);
    let o = db.query_with("path(n0, Y)", Strategy::ChainSplit).unwrap();
    assert_eq!(o.answers.len(), 400);
}

#[test]
fn empty_database_and_unknown_predicates() {
    let mut db = DeductiveDb::new();
    db.load("p(X) :- no_such_relation(X).").unwrap();
    assert!(db.query("p(X)").unwrap().is_empty());
    assert!(db.query("completely_unknown(X)").unwrap().is_empty());
}

#[test]
fn same_name_different_arity_coexist() {
    let mut db = DeductiveDb::new();
    db.load(
        "p(1). p(1, 2).
         q(X) :- p(X).
         r(X, Y) :- p(X, Y).",
    )
    .unwrap();
    assert_eq!(db.query("q(X)").unwrap().len(), 1);
    assert_eq!(db.query("r(X, Y)").unwrap().len(), 1);
}

/// The cyclic corpus program (`tests/corpus/path_cycle.dl`) with its EDB
/// scaled up to a `n`-node cycle: big enough that a fixpoint spans many
/// rounds and tens of milliseconds even in debug builds, yet the full
/// closure still completes for the recovery reference.
fn scaled_cycle_db(n: usize) -> DeductiveDb {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/path_cycle.dl"
    ))
    .unwrap();
    let case = chain_split::workloads::fuzz::parse_corpus("path_cycle.dl", &text);
    let mut db = DeductiveDb::new();
    db.load(&case.program()).unwrap();
    for i in 0..n {
        db.load_rule(&format!("edge(m{i}, m{}).", (i + 1) % n))
            .unwrap();
    }
    db
}

fn sorted_answers(o: &QueryOutcome) -> Vec<String> {
    let mut v: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
    v.sort();
    v
}

#[test]
fn deadline_expiry_mid_round_returns_partial_metrics_then_recovers() {
    // The acceptance scenario: a 50 ms deadline against the (scaled)
    // cyclic corpus program trips with partial metrics well within 2x the
    // deadline, at one worker and at four; lifting the budget on the SAME
    // db then reproduces the clean reference bit-for-bit.
    for threads in [1usize, 4] {
        let mut db = scaled_cycle_db(220);
        db.set_threads(threads);
        // Warm-up so the clean reference runs with the EDB's lazy indexes
        // already built — index_hits/index_builds then compare exactly.
        let _ = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
        let clean = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
        assert!(clean.trip.is_none());

        db.set_budget(Budget::with_wall_ms(50));
        let t0 = Instant::now();
        let partial = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
        let elapsed = t0.elapsed();
        let trip = partial
            .trip
            .unwrap_or_else(|| panic!("50 ms deadline must trip at threads={threads}"));
        assert_eq!(trip.resource, Resource::Wall, "threads={threads}");
        // Partial metrics came back with the drained result: the rounds
        // completed before the deadline, with their counters.
        assert!(
            !partial.rounds.is_empty(),
            "threads={threads}: partial RoundMetrics expected"
        );
        assert!(partial.counters.derived > 0, "threads={threads}");
        // Responsiveness: the cooperative checks sit on round boundaries
        // and probe batches, so the drain lands in a small multiple of
        // the deadline. 2x is the acceptance bound; allow slack for CI
        // scheduling noise on top of the 100 ms ideal.
        assert!(
            elapsed < Duration::from_millis(2000),
            "threads={threads}: drain took {elapsed:?}"
        );

        db.set_budget(Budget::default());
        let recovered = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
        assert!(recovered.trip.is_none(), "threads={threads}");
        assert_eq!(
            sorted_answers(&recovered),
            sorted_answers(&clean),
            "threads={threads}: recovery must match the clean reference"
        );
        assert_eq!(
            recovered.counters, clean.counters,
            "threads={threads}: recovered counters must be bit-identical"
        );
    }
}

#[test]
fn cancellation_from_a_second_thread_drains_gracefully() {
    let mut db = scaled_cycle_db(220);
    let token = db.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
    });
    let outcome = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
    canceller.join().unwrap();
    let trip = outcome.trip.expect("cross-thread cancellation must trip");
    assert_eq!(trip.resource, Resource::Cancelled);
    // The db stays usable: the next query runs to completion.
    let again = db.query_with("path(n0, Y)", Strategy::SemiNaive).unwrap();
    assert!(again.trip.is_none());
    assert!(outcome.answers.len() <= again.answers.len());
}

#[test]
fn byte_budget_trips_the_buffered_up_sweep_then_recovers() {
    let mut db = DeductiveDb::new();
    db.load(fixtures::APPEND).unwrap();
    db.set_budget(Budget {
        max_bytes_est: Some(1),
        ..Budget::default()
    });
    let q = "append(U, V, [1, 2, 3, 4, 5, 6, 7, 8])";
    let partial = db.query_with(q, Strategy::ChainSplit).unwrap();
    let trip = partial.trip.expect("a 1-byte budget must trip");
    assert_eq!(trip.resource, Resource::Bytes);
    assert_eq!(trip.phase, "up-sweep");
    assert!(partial.answers.len() < 9);
    db.set_budget(Budget::default());
    let full = db.query_with(q, Strategy::ChainSplit).unwrap();
    assert!(full.trip.is_none());
    assert_eq!(full.answers.len(), 9);
}

#[test]
fn pruning_never_loses_answers_on_adversarial_fares() {
    // Zero-fare cycles of flights would make naive pruning tempting and
    // wrong; the analysis only pushes when soundness is provable, and the
    // residual filter guarantees the final answers either way.
    let mut db = DeductiveDb::new();
    db.load(fixtures::TRAVEL).unwrap();
    db.load(
        "flight(1, x, 100, y, 110, 0).
         flight(2, y, 200, z, 210, 500).
         flight(3, x, 100, z, 250, 600).",
    )
    .unwrap();
    let all = db.query("travel(L, x, DT, z, AT, F), F <= 500").unwrap();
    assert_eq!(all.len(), 1, "{all:?}"); // [1, 2] with F = 500
    assert!(all[0].to_string().contains("[1, 2]"));
}
