//! Property tests across evaluation strategies: on randomly generated
//! workloads, every method must return the same answers, and the
//! functional recursions must agree with native Rust implementations.

use chain_split::core::{DeductiveDb, Strategy as Method};
use chain_split::logic::Term;
use chain_split::workloads::fixtures;
use proptest::prelude::*;

const ALL_STRATEGIES: [Method; 8] = [
    Method::Auto,
    Method::TopDown,
    Method::Naive,
    Method::SemiNaive,
    Method::Magic,
    Method::SupplementaryMagic,
    Method::ChainSplitMagic,
    Method::Tabled,
];

fn sorted_answers(db: &mut DeductiveDb, q: &str, strat: Method) -> Vec<String> {
    let mut v: Vec<String> = db
        .query_with(q, strat)
        .unwrap_or_else(|e| panic!("{strat} on {q}: {e}"))
        .answers
        .iter()
        .map(|a| a.to_string())
        .collect();
    v.sort();
    v
}

/// A random acyclic parent forest plus sibling pairs.
fn arb_family() -> impl Strategy<Value = (String, usize)> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut src = String::new();
        let mut s = seed;
        let mut next = move || {
            // xorshift: deterministic, no rand dependency needed here.
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // parent(i, j) only for i > j keeps the data acyclic.
        for i in 1..n {
            let j = (next() as usize) % i;
            src.push_str(&format!("parent(p{i}, p{j}).\n"));
            if next() % 3 == 0 {
                let k = (next() as usize) % i;
                src.push_str(&format!("parent(p{i}, p{k}).\n"));
            }
        }
        for _ in 0..n / 2 {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            src.push_str(&format!("sibling(p{a}, p{b}). sibling(p{b}, p{a}).\n"));
        }
        (src, n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six strategies agree on sg over random families.
    #[test]
    fn sg_strategies_agree((facts, n) in arb_family(), probe in 0usize..24) {
        let mut db = DeductiveDb::new();
        db.load(fixtures::SG).unwrap();
        db.load(&facts).unwrap();
        let q = format!("sg(p{}, Y)", probe % n);
        let reference = sorted_answers(&mut db, &q, Method::Auto);
        for strat in ALL_STRATEGIES {
            prop_assert_eq!(&sorted_answers(&mut db, &q, strat), &reference, "{}", strat);
        }
    }

    /// path over random DAG edges: bottom-up, magic and chain-split agree.
    #[test]
    fn path_strategies_agree(n in 2usize..20, seed in any::<u64>(), probe in 0usize..20) {
        let mut db = DeductiveDb::new();
        db.load(fixtures::PATH).unwrap();
        for e in chain_split::workloads::random_dag_edges(n, 2, seed) {
            db.add_fact(e);
        }
        let q = format!("path(n{}, Y)", probe % n);
        let reference = sorted_answers(&mut db, &q, Method::SemiNaive);
        for strat in ALL_STRATEGIES {
            prop_assert_eq!(&sorted_answers(&mut db, &q, strat), &reference, "{}", strat);
        }
    }

    /// isort and qsort agree with Rust's sort, under both chain-split and
    /// top-down evaluation.
    #[test]
    fn sorting_agrees_with_native(data in prop::collection::vec(0i64..100, 0..24)) {
        let mut db = DeductiveDb::new();
        db.load(fixtures::ISORT).unwrap();
        db.load(fixtures::QSORT).unwrap();
        let list = Term::int_list(data.clone());
        let mut sorted = data;
        sorted.sort();
        let expected = format!("Ys = {}", Term::int_list(sorted));
        for q in [format!("isort({list}, Ys)"), format!("qsort({list}, Ys)")] {
            for strat in [Method::Auto, Method::TopDown] {
                let a = sorted_answers(&mut db, &q, strat);
                prop_assert_eq!(a.len(), 1, "{} {}", strat, q);
                prop_assert_eq!(&a[0], &expected, "{} {}", strat, q);
            }
        }
    }

    /// append backwards enumerates exactly the n+1 splits, agreeing with
    /// the native computation, under chain-split and top-down.
    #[test]
    fn append_splits_agree(data in prop::collection::vec(0i64..100, 0..16)) {
        let mut db = DeductiveDb::new();
        db.load(fixtures::APPEND).unwrap();
        let list = Term::int_list(data.clone());
        let q = format!("append(U, V, {list})");
        let expected: Vec<String> = {
            let mut v: Vec<String> = (0..=data.len())
                .map(|i| {
                    format!(
                        "U = {}, V = {}",
                        Term::int_list(data[..i].to_vec()),
                        Term::int_list(data[i..].to_vec())
                    )
                })
                .collect();
            v.sort();
            v
        };
        for strat in [Method::Auto, Method::TopDown] {
            prop_assert_eq!(&sorted_answers(&mut db, &q, strat), &expected, "{}", strat);
        }
    }

    /// append forward agrees with native concatenation.
    #[test]
    fn append_forward_agrees(
        a in prop::collection::vec(0i64..100, 0..12),
        b in prop::collection::vec(0i64..100, 0..12),
    ) {
        let mut db = DeductiveDb::new();
        db.load(fixtures::APPEND).unwrap();
        let mut cat = a.clone();
        cat.extend(&b);
        let q = format!("append({}, {}, W)", Term::int_list(a), Term::int_list(b));
        let expected = vec![format!("W = {}", Term::int_list(cat))];
        for strat in [Method::Auto, Method::TopDown] {
            prop_assert_eq!(&sorted_answers(&mut db, &q, strat), &expected, "{}", strat);
        }
    }

    /// Constraint pushing never changes answers: travel with a pushed fare
    /// bound equals travel filtered after the fact.
    #[test]
    fn constraint_pushing_preserves_answers(
        airports in 3usize..8,
        extra in 0usize..6,
        seed in any::<u64>(),
        budget in 0i64..2000,
    ) {
        let cfg = chain_split::workloads::FlightConfig {
            airports,
            extra_flights: extra,
            fare_min: 50,
            fare_max: 400,
            seed,
        };
        let mut db = DeductiveDb::new();
        db.load(fixtures::TRAVEL).unwrap();
        for f in chain_split::workloads::flight_facts(cfg) {
            db.add_fact(f);
        }
        let (from, to) = chain_split::workloads::endpoints(cfg);
        let base = format!("travel(L, {from}, DT, {to}, AT, F)");
        // Unconstrained answers, filtered natively on F.
        let all = db.query(&base).unwrap();
        let expected: Vec<String> = {
            let mut v: Vec<String> = all
                .iter()
                .filter(|a| {
                    a.bindings.iter().any(|(var, t)| {
                        var.name.as_str() == "F"
                            && matches!(t, Term::Int(f) if *f <= budget)
                    })
                })
                .map(|a| a.to_string())
                .collect();
            v.sort();
            v
        };
        // Pushed-constraint answers.
        let constrained = sorted_answers(
            &mut db,
            &format!("{base}, F <= {budget}"),
            Method::Auto,
        );
        prop_assert_eq!(constrained, expected);
    }
}
