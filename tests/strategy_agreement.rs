//! Differential tests across evaluation strategies, driven by the
//! deterministic fuzzer in [`chain_split::differential`]: on generated
//! workloads every applicable method must return the same answers, every
//! method must be bit-identical across thread counts (answers *and* work
//! counters), and the functional recursions must agree with native Rust
//! implementations.
//!
//! Everything here is seeded — a failure names the exact seed, and
//! `cargo run --release --bin fuzz -- --start <seed> --seeds 1` replays
//! and shrinks it.

use chain_split::core::{DeductiveDb, Strategy as Method};
use chain_split::differential::{check_case, shrink_case};
use chain_split::logic::Term;
use chain_split::workloads::fixtures;
use chain_split::workloads::fuzz::{gen_case, SplitMix64};

fn sorted_answers(db: &mut DeductiveDb, q: &str, strat: Method) -> Vec<String> {
    let mut v: Vec<String> = db
        .query_with(q, strat)
        .unwrap_or_else(|e| panic!("{strat} on {q}: {e}"))
        .answers
        .iter()
        .map(|a| a.to_string())
        .collect();
    v.sort();
    v
}

/// The core oracle: a block of fixed fuzzer seeds, each checked across
/// all applicable strategies at 1 and 4 threads. Any mismatch is shrunk
/// and printed as a corpus-format reproduction before failing.
#[test]
fn fuzzer_seeds_agree_across_strategies_and_threads() {
    let threads = [1, 4];
    for seed in 0..12 {
        let case = gen_case(seed);
        if let Err(m) = check_case(&case, &threads) {
            let shrunk = shrink_case(&case, &threads);
            panic!("differential mismatch: {m}\nshrunk reproduction:\n{shrunk}");
        }
    }
}

/// Thread-count sweep on a smaller seed block: outcomes must be
/// bit-identical at 1, 2, 4 and 8 threads (the acceptance sweep).
#[test]
fn fuzzer_seeds_are_deterministic_across_full_thread_sweep() {
    let threads = [1, 2, 4, 8];
    for seed in 0..6 {
        let case = gen_case(seed);
        if let Err(m) = check_case(&case, &threads) {
            let shrunk = shrink_case(&case, &threads);
            panic!("differential mismatch: {m}\nshrunk reproduction:\n{shrunk}");
        }
    }
}

/// isort and qsort agree with Rust's sort, under both chain-split and
/// top-down evaluation, on deterministic random lists.
#[test]
fn sorting_agrees_with_native() {
    let mut rng = SplitMix64::new(0xBAD5EED);
    for len in [0usize, 1, 2, 5, 9, 14] {
        let data: Vec<i64> = (0..len).map(|_| rng.below(100) as i64).collect();
        let mut db = DeductiveDb::new();
        db.load(fixtures::ISORT).unwrap();
        db.load(fixtures::QSORT).unwrap();
        let list = Term::int_list(data.clone());
        let mut sorted = data;
        sorted.sort();
        let expected = format!("Ys = {}", Term::int_list(sorted));
        for q in [format!("isort({list}, Ys)"), format!("qsort({list}, Ys)")] {
            for strat in [Method::Auto, Method::TopDown] {
                let a = sorted_answers(&mut db, &q, strat);
                assert_eq!(a.len(), 1, "{strat} {q}");
                assert_eq!(a[0], expected, "{strat} {q}");
            }
        }
    }
}

/// append backwards enumerates exactly the n+1 splits, agreeing with the
/// native computation, under chain-split and top-down.
#[test]
fn append_splits_agree() {
    let mut rng = SplitMix64::new(0xA99E17D);
    for len in [0usize, 1, 3, 7, 12] {
        let data: Vec<i64> = (0..len).map(|_| rng.below(100) as i64).collect();
        let mut db = DeductiveDb::new();
        db.load(fixtures::APPEND).unwrap();
        let list = Term::int_list(data.clone());
        let q = format!("append(U, V, {list})");
        let expected: Vec<String> = {
            let mut v: Vec<String> = (0..=data.len())
                .map(|i| {
                    format!(
                        "U = {}, V = {}",
                        Term::int_list(data[..i].to_vec()),
                        Term::int_list(data[i..].to_vec())
                    )
                })
                .collect();
            v.sort();
            v
        };
        for strat in [Method::Auto, Method::TopDown] {
            assert_eq!(sorted_answers(&mut db, &q, strat), expected, "{strat}");
        }
    }
}

/// append forward agrees with native concatenation.
#[test]
fn append_forward_agrees() {
    let mut rng = SplitMix64::new(0xF02AD);
    for (la, lb) in [(0usize, 0usize), (0, 4), (4, 0), (3, 5), (8, 8)] {
        let a: Vec<i64> = (0..la).map(|_| rng.below(100) as i64).collect();
        let b: Vec<i64> = (0..lb).map(|_| rng.below(100) as i64).collect();
        let mut db = DeductiveDb::new();
        db.load(fixtures::APPEND).unwrap();
        let mut cat = a.clone();
        cat.extend(&b);
        let q = format!("append({}, {}, W)", Term::int_list(a), Term::int_list(b));
        let expected = vec![format!("W = {}", Term::int_list(cat))];
        for strat in [Method::Auto, Method::TopDown] {
            assert_eq!(sorted_answers(&mut db, &q, strat), expected, "{strat}");
        }
    }
}

/// Constraint pushing never changes answers: travel with a pushed fare
/// bound equals travel filtered after the fact.
#[test]
fn constraint_pushing_preserves_answers() {
    let mut rng = SplitMix64::new(0x7EAFE11E);
    for _ in 0..6 {
        let cfg = chain_split::workloads::FlightConfig {
            airports: 3 + rng.below(5) as usize,
            extra_flights: rng.below(6) as usize,
            fare_min: 50,
            fare_max: 400,
            seed: rng.next_u64(),
        };
        let budget = (100 + rng.below(1500)) as i64;
        let mut db = DeductiveDb::new();
        db.load(fixtures::TRAVEL).unwrap();
        for f in chain_split::workloads::flight_facts(cfg) {
            db.add_fact(f).unwrap();
        }
        let (from, to) = chain_split::workloads::endpoints(cfg);
        let base = format!("travel(L, {from}, DT, {to}, AT, F)");
        // Unconstrained answers, filtered natively on F.
        let all = db.query(&base).unwrap();
        let expected: Vec<String> = {
            let mut v: Vec<String> = all
                .iter()
                .filter(|a| {
                    a.bindings.iter().any(|(var, t)| {
                        var.name.as_str() == "F" && matches!(t, Term::Int(f) if *f <= budget)
                    })
                })
                .map(|a| a.to_string())
                .collect();
            v.sort();
            v
        };
        // Pushed-constraint answers.
        let constrained = sorted_answers(&mut db, &format!("{base}, F <= {budget}"), Method::Auto);
        assert_eq!(constrained, expected, "cfg {cfg:?} budget {budget}");
    }
}
