//! Offline stand-in for the `criterion` crate.
//!
//! The benches in this workspace only use `Criterion::benchmark_group`,
//! `bench_function`, `sample_size` and the `criterion_group!` /
//! `criterion_main!` macros, so that is what this shim provides: each
//! bench runs `sample_size` timed samples (after one warm-up) and prints
//! min / median / max wall time per iteration. No statistics beyond that —
//! the paper's ordinal comparisons are carried by the `table_e*` binaries,
//! which report machine-independent work counters.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_bench(name, n, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up sample, discarded.
    f(&mut b);
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed / b.iters as u32);
        }
    }
    per_iter.sort();
    if per_iter.is_empty() {
        println!("  {name}: no iterations recorded");
        return;
    }
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {name}: median {median:?} (min {:?}, max {:?}, {} samples)",
        per_iter[0],
        per_iter[per_iter.len() - 1],
        per_iter.len()
    );
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Mirrors `criterion::criterion_group!`: collects bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("t");
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
