//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no network access to crates.io,
//! so the workspace vendors the tiny slice of `parking_lot` it actually
//! uses: `RwLock` and `Mutex` with non-poisoning guards. Lock poisoning is
//! deliberately swallowed (`PoisonError::into_inner`) to match
//! parking_lot's semantics, where a panicking holder does not poison.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
