//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no network access to crates.io,
//! so the workspace vendors the tiny slice of `parking_lot` it actually
//! uses: `RwLock` and `Mutex` with non-poisoning guards. Lock poisoning is
//! deliberately swallowed (`PoisonError::into_inner`) to match
//! parking_lot's semantics, where a panicking holder does not poison.

use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.0.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A read guard that supports parking_lot's `map`/`try_map` projection —
/// std's guard only gained those on nightly, so the stub wraps it.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Projects the guard onto a component of the protected data, as
    /// [`RwLockReadGuard::map`] in real parking_lot.
    pub fn map<U: ?Sized, F>(orig: Self, f: F) -> MappedRwLockReadGuard<'a, U>
    where
        F: FnOnce(&T) -> &U,
    {
        let ptr: *const U = f(&orig.inner);
        MappedRwLockReadGuard {
            _held: Box::new(orig.inner),
            ptr,
            marker: PhantomData,
        }
    }

    /// Fallible projection: returns the untouched guard back on `None`, as
    /// [`RwLockReadGuard::try_map`] in real parking_lot.
    pub fn try_map<U: ?Sized, F>(orig: Self, f: F) -> Result<MappedRwLockReadGuard<'a, U>, Self>
    where
        F: FnOnce(&T) -> Option<&U>,
    {
        match f(&orig.inner) {
            Some(component) => {
                let ptr: *const U = component;
                Ok(MappedRwLockReadGuard {
                    _held: Box::new(orig.inner),
                    ptr,
                    marker: PhantomData,
                })
            }
            None => Err(orig),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Type-erasure target for the original guard kept alive inside a
/// [`MappedRwLockReadGuard`] (`Any` would demand `'static`).
trait Held {}
impl<T: ?Sized> Held for std::sync::RwLockReadGuard<'_, T> {}

/// A read guard projected onto a component of the locked data.
///
/// Holds the original guard (type-erased) so the lock stays read-held for
/// the mapped guard's lifetime, plus a raw pointer to the component.
///
/// Safety: `ptr` was derived from a `&U` borrowed out of the guarded data,
/// whose owner is kept alive (and read-locked) by `_held`; the `PhantomData`
/// ties the projection to the lock's `'a` borrow, so the pointer cannot
/// outlive either the data or the read lock.
pub struct MappedRwLockReadGuard<'a, U: ?Sized> {
    _held: Box<dyn Held + 'a>,
    ptr: *const U,
    marker: PhantomData<&'a U>,
}

impl<U: ?Sized> Deref for MappedRwLockReadGuard<'_, U> {
    type Target = U;
    fn deref(&self) -> &U {
        unsafe { &*self.ptr }
    }
}

impl<U: ?Sized + std::fmt::Debug> std::fmt::Debug for MappedRwLockReadGuard<'_, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn read_guard_maps_to_component() {
        let l = RwLock::new((1, vec![2, 3]));
        let mapped = RwLockReadGuard::map(l.read(), |pair| pair.1.as_slice());
        assert_eq!(&*mapped, &[2, 3]);
        // The mapped guard still holds the read lock: another reader is
        // fine, a writer would deadlock (not testable single-threaded).
        assert_eq!(l.read().0, 1);
        drop(mapped);
        l.write().0 = 9;
        assert_eq!(l.read().0, 9);
    }

    #[test]
    fn try_map_returns_guard_on_none() {
        let l = RwLock::new(vec![1, 2]);
        let guard = l.read();
        let back = match RwLockReadGuard::try_map(guard, |v| v.get(7)) {
            Ok(_) => panic!("index 7 must miss"),
            Err(g) => g,
        };
        assert_eq!(back.len(), 2);
        let hit = RwLockReadGuard::try_map(back, |v| v.get(1)).ok().unwrap();
        assert_eq!(*hit, 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
