//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro that this
//! workspace's property tests use, with two deliberate simplifications:
//! cases are generated from a seed derived from the test name (so runs are
//! reproducible without a persistence file), and failures are reported via
//! plain `panic!` without shrinking. The `Strategy` surface — ranges,
//! `any`, `Just`, tuples, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `prop::collection::vec` — matches upstream closely enough that these
//! tests compile unchanged against real proptest.

pub mod test_runner {
    /// Deterministic xoshiro-style generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut st = seed;
            TestRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }

        /// Seeds from a test name, so each test gets its own stream but
        /// every run of the same binary replays the same cases.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking: `generate`
    /// directly produces a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps a strategy for the type into one for a node one
        /// level deeper. `depth` bounds nesting; the size/branch hints are
        /// accepted for API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Lean toward leaves so generated structures stay small.
                strat = Union::new(vec![(2, leaf.clone()), (1, recurse(strat).boxed())]).boxed();
            }
            strat
        }
    }

    /// Object-safe view of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A reference-counted, clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide - lo as $wide) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide + rng.below(span as u64) as $wide) as $t
                }
            }
        )*};
    }

    int_strategy!(
        u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
        i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
    );

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize, // exclusive
    }

    /// Anything usable as a length range for `collection::vec`.
    pub trait SizeRange {
        /// (min, exclusive max)
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as Default>::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&$strat, &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        let strat = (0usize..10, 5i64..=6);
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        let strat = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [false; 3];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v == 2);
            saw[v as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated vecs respect their size range.
        #[test]
        fn vec_strategy_in_macro(v in prop::collection::vec(0i64..100, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }
    }
}
