//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64` plus `Rng::gen_range` over integer ranges —
//! on top of xoshiro256++ seeded via SplitMix64. The streams differ from
//! upstream rand, but every caller in this repo treats the generator as an
//! arbitrary deterministic source, so only seed-determinism matters.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like upstream rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, bound)` by rejection on the top of the word.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire-style widening multiply with rejection.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not upstream's ChaCha12, but
    /// the workspace only relies on seed-determinism, not the stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(10i64..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(3usize..5);
            assert!((3..5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
